//! Complex banded matrices and LU factorisation with partial pivoting.
//!
//! The 2-D FDFD Helmholtz operator is a 5-point stencil: with grid ordering
//! along the fast axis its bandwidth equals the fast-axis extent, so a
//! banded direct solver (the algorithm of LAPACK's `zgbtrf`/`zgbtrs`)
//! factors it in `O(n·b²)` time and solves each right-hand side in
//! `O(n·b)`. Both the forward solve and the transpose solve are provided —
//! the adjoint method solves `Aᵀλ = g` against the *same* factorisation.
//!
//! Storage is column-major LAPACK band format with `2·kl + ku + 1` rows per
//! column: the top `kl` rows are fill space for pivoting.
//!
//! # Workspace / ownership contract
//!
//! The solver supports two usage styles:
//!
//! * **One-shot** — [`BandedMatrix::factor`] consumes the matrix and moves
//!   its storage into the returned [`BandedLu`]; each call allocates fresh
//!   band storage via [`BandedMatrix::new`]. Simple, but in a hot loop the
//!   `(2·kl+ku+1)·n` complex allocation and its zero-fill dominate.
//! * **Workspace reuse** — the caller keeps one [`BandedMatrix`] (reset
//!   with [`BandedMatrix::reset`] / [`BandedMatrix::reshape`] between
//!   assemblies) and one [`BandedLu`] created once via
//!   [`BandedLu::placeholder`], then refilled with
//!   [`BandedMatrix::factor_into`]. After the first call, `factor_into`
//!   performs **zero heap allocations**: the band image is `memcpy`ed into
//!   the factor's existing buffer and factored in place. Multi-RHS solves
//!   go through [`BandedLu::solve_many`] / [`BandedLu::solve_transpose_many`]
//!   which make a *single* pass over the factors for all right-hand sides.
//!
//! The factorisation kernel is shared by both styles and is written in
//! slice/iterator form (no bounds checks in the inner loops) so the
//! compiler can vectorise the complex axpy updates; pivot selection uses
//! `|·|²` instead of `|·|` (equivalent argmax, no `hypot` per entry). The
//! seed's straightforward scalar implementation is preserved unchanged in
//! [`reference`](mod@reference) as the correctness baseline for property tests and as the
//! naïve side of the `solver` criterion bench.
//!
//! # Examples
//!
//! ```
//! use boson_num::{banded::BandedMatrix, c64, Complex64};
//!
//! // Tridiagonal system (kl = ku = 1): -u'' = f discretised.
//! let n = 5;
//! let mut a = BandedMatrix::new(n, 1, 1);
//! for i in 0..n {
//!     a.add(i, i, c64(2.0, 0.0));
//!     if i > 0 { a.add(i, i - 1, c64(-1.0, 0.0)); }
//!     if i + 1 < n { a.add(i, i + 1, c64(-1.0, 0.0)); }
//! }
//! let lu = a.factor()?;
//! let mut b = vec![Complex64::ONE; n];
//! lu.solve(&mut b);
//! // middle of the discrete parabola is the largest
//! assert!(b[2].re > b[0].re);
//! # Ok::<(), boson_num::banded::SingularMatrixError>(())
//! ```
//!
//! Allocation-free reuse across repeated factorisations:
//!
//! ```
//! use boson_num::banded::{BandedLu, BandedMatrix};
//! use boson_num::c64;
//!
//! let mut a = BandedMatrix::new(4, 1, 1);
//! let mut lu = BandedLu::placeholder();
//! for shift in [2.0, 3.0] {
//!     a.reset();
//!     for i in 0..4 { a.set(i, i, c64(shift, 0.0)); }
//!     a.factor_into(&mut lu).unwrap();
//!     let mut x = vec![c64(1.0, 0.0); 4];
//!     lu.solve(&mut x);
//!     assert!((x[0].re - 1.0 / shift).abs() < 1e-14);
//! }
//! ```

use crate::complex::{axpy_neg, dotu, scal};
use crate::Complex64;
use std::fmt;

/// Error returned when LU factorisation encounters an exactly-zero pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Column at which the zero pivot appeared.
    pub column: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is singular: zero pivot at column {}",
            self.column
        )
    }
}

impl std::error::Error for SingularMatrixError {}

/// A square complex matrix stored in LAPACK general-band format.
///
/// `kl` sub-diagonals and `ku` super-diagonals are representable; entries
/// outside the band are structurally zero.
#[derive(Clone)]
pub struct BandedMatrix {
    n: usize,
    kl: usize,
    ku: usize,
    /// Column-major band storage, `ldab = 2*kl + ku + 1` rows per column.
    ab: Vec<Complex64>,
}

impl fmt::Debug for BandedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BandedMatrix(n={}, kl={}, ku={})",
            self.n, self.kl, self.ku
        )
    }
}

impl BandedMatrix {
    /// Creates an all-zero `n×n` banded matrix with `kl` sub- and `ku`
    /// super-diagonals.
    pub fn new(n: usize, kl: usize, ku: usize) -> Self {
        let ldab = 2 * kl + ku + 1;
        Self {
            n,
            kl,
            ku,
            ab: vec![Complex64::ZERO; ldab * n],
        }
    }

    /// Matrix dimension.
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of sub-diagonals.
    #[inline(always)]
    pub fn kl(&self) -> usize {
        self.kl
    }

    /// Number of super-diagonals.
    #[inline(always)]
    pub fn ku(&self) -> usize {
        self.ku
    }

    #[inline(always)]
    fn ldab(&self) -> usize {
        2 * self.kl + self.ku + 1
    }

    /// Flat index of logical entry `(i, j)`; valid only inside the band.
    #[inline(always)]
    fn idx(&self, i: usize, j: usize) -> usize {
        // row within column j's band block: kl + ku + i - j
        j * self.ldab() + (self.kl + self.ku + i - j)
    }

    /// Zeroes the band storage in place, keeping the allocation.
    ///
    /// Part of the workspace-reuse contract: call before re-assembling an
    /// operator into a matrix that was already factored from.
    pub fn reset(&mut self) {
        self.ab.fill(Complex64::ZERO);
    }

    /// Reshapes to an all-zero `n×n` band with `kl`/`ku` diagonals,
    /// reusing the existing allocation when it is large enough.
    pub fn reshape(&mut self, n: usize, kl: usize, ku: usize) {
        let ldab = 2 * kl + ku + 1;
        self.n = n;
        self.kl = kl;
        self.ku = ku;
        self.ab.clear();
        self.ab.resize(ldab * n, Complex64::ZERO);
    }

    /// `true` when `(i, j)` lies inside the stored band.
    #[inline(always)]
    pub fn in_band(&self, i: usize, j: usize) -> bool {
        i < self.n && j < self.n && i + self.ku >= j && j + self.kl >= i
    }

    /// Adds `v` to entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the band.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(
            self.in_band(i, j),
            "entry ({i},{j}) outside band (n={}, kl={}, ku={})",
            self.n,
            self.kl,
            self.ku
        );
        let k = self.idx(i, j);
        self.ab[k] += v;
    }

    /// Overwrites entry `(i, j)` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the band.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(self.in_band(i, j), "entry ({i},{j}) outside band");
        let k = self.idx(i, j);
        self.ab[k] = v;
    }

    /// Returns entry `(i, j)` (zero outside the band).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        if self.in_band(i, j) {
            self.ab[self.idx(i, j)]
        } else {
            Complex64::ZERO
        }
    }

    /// Dense matrix–vector product `y = A x` (for tests and residuals).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        let mut y = vec![Complex64::ZERO; self.n];
        self.matvec_into(x, &mut y);
        y
    }

    /// Allocation-free matrix–vector product `y = A x`, overwriting `y`.
    ///
    /// Sweeps the band storage column by column (each column is contiguous,
    /// so the inner update is a vectorisable [`crate::complex::axpy`]); this is the
    /// operator application behind the matrix-free iterative solver in
    /// [`crate::krylov`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n` or `y.len() != n`.
    pub fn matvec_into(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.n, "matvec dimension mismatch");
        assert_eq!(y.len(), self.n, "matvec output dimension mismatch");
        y.fill(Complex64::ZERO);
        for (j, &xj) in x.iter().enumerate() {
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            let base = self.idx(ilo, j);
            crate::complex::axpy(xj, &self.ab[base..=base + (ihi - ilo)], &mut y[ilo..=ihi]);
        }
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn matvec_transpose(&self, x: &[Complex64]) -> Vec<Complex64> {
        let mut y = vec![Complex64::ZERO; self.n];
        self.matvec_transpose_into(x, &mut y);
        y
    }

    /// Allocation-free transposed matrix–vector product `y = Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n` or `y.len() != n`.
    pub fn matvec_transpose_into(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.n, "matvec_transpose dimension mismatch");
        assert_eq!(
            y.len(),
            self.n,
            "matvec_transpose output dimension mismatch"
        );
        for (j, yj) in y.iter_mut().enumerate() {
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            let base = self.idx(ilo, j);
            *yj = dotu(&self.ab[base..=base + (ihi - ilo)], &x[ilo..=ihi]);
        }
    }

    /// Maximum relative asymmetry `|A - Aᵀ|/|A|` over the band — used to
    /// verify that the symmetrised FDFD assembly really is symmetric.
    pub fn asymmetry(&self) -> f64 {
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for j in 0..self.n {
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            for i in ilo..=ihi {
                let a = self.get(i, j);
                let b = self.get(j, i);
                num = num.max((a - b).abs());
                den = den.max(a.abs());
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Factors the matrix (partial pivoting), consuming it.
    ///
    /// The band storage moves into the returned factorisation without a
    /// copy. For repeated factorisations prefer
    /// [`BandedMatrix::factor_into`], which keeps the assembly buffer.
    ///
    /// # Examples
    ///
    /// ```
    /// use boson_num::banded::BandedMatrix;
    /// use boson_num::{c64, Complex64};
    ///
    /// // Tridiagonal system: 2x_i − x_{i−1} − x_{i+1} = b_i.
    /// let n = 8;
    /// let mut a = BandedMatrix::new(n, 1, 1);
    /// for i in 0..n {
    ///     a.set(i, i, c64(2.0, 0.0));
    ///     if i > 0 {
    ///         a.set(i, i - 1, c64(-1.0, 0.0));
    ///         a.set(i - 1, i, c64(-1.0, 0.0));
    ///     }
    /// }
    /// let check = a.clone();
    /// let lu = a.factor()?;
    /// let x = lu.solve_vec(&vec![Complex64::ONE; n]);
    /// // The factorisation solves the original system: A x == b.
    /// for ax in check.matvec(&x) {
    ///     assert!((ax - Complex64::ONE).abs() < 1e-12);
    /// }
    /// # Ok::<(), boson_num::banded::SingularMatrixError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if an exactly-zero pivot is met.
    pub fn factor(mut self) -> Result<BandedLu, SingularMatrixError> {
        let mut ipiv = vec![0usize; self.n];
        factor_kernel(self.n, self.kl, self.ku, &mut self.ab, &mut ipiv)?;
        Ok(BandedLu {
            n: self.n,
            kl: self.kl,
            ku: self.ku,
            ab: std::mem::take(&mut self.ab),
            ipiv,
        })
    }

    /// Factors the matrix into a caller-owned [`BandedLu`], leaving the
    /// assembly intact.
    ///
    /// The band image is copied into `lu`'s existing storage and factored
    /// there; once `lu` has been used with the same dimensions before, the
    /// call performs no heap allocation. This is the workhorse of the
    /// zero-allocation simulation pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if an exactly-zero pivot is met (in
    /// which case `lu` holds garbage and must be refilled before use).
    pub fn factor_into(&self, lu: &mut BandedLu) -> Result<(), SingularMatrixError> {
        lu.n = self.n;
        lu.kl = self.kl;
        lu.ku = self.ku;
        lu.ab.clear();
        lu.ab.extend_from_slice(&self.ab);
        lu.ipiv.clear();
        lu.ipiv.resize(self.n, 0);
        factor_kernel(self.n, self.kl, self.ku, &mut lu.ab, &mut lu.ipiv)
    }

    /// Like [`BandedMatrix::factor_into`] but *swaps* band storage with
    /// `lu` instead of copying it, then factors in place — the band image
    /// in `self` is **destroyed** (replaced by `lu`'s previous storage,
    /// zero-padded to the right size, contents unspecified).
    ///
    /// This is the cheapest refactorisation path for workspaces that
    /// re-assemble from scratch each round anyway (call
    /// [`BandedMatrix::reset`] before the next assembly, as usual): it
    /// skips the `(2·kl+ku+1)·n` copy entirely and still performs zero
    /// heap allocations once both buffers are warm.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if an exactly-zero pivot is met.
    pub fn factor_swap_into(&mut self, lu: &mut BandedLu) -> Result<(), SingularMatrixError> {
        lu.n = self.n;
        lu.kl = self.kl;
        lu.ku = self.ku;
        std::mem::swap(&mut self.ab, &mut lu.ab);
        // `self` inherited `lu`'s previous storage; keep its length
        // consistent with the declared shape for the next reset+assembly.
        self.ab.resize(self.ldab() * self.n, Complex64::ZERO);
        lu.ipiv.clear();
        lu.ipiv.resize(self.n, 0);
        factor_kernel(self.n, self.kl, self.ku, &mut lu.ab, &mut lu.ipiv)
    }
}

/// The in-place `zgbtrf`-style kernel shared by [`BandedMatrix::factor`]
/// and [`BandedMatrix::factor_into`].
///
/// Pivot selection compares `|·|²` (same argmax as `|·|`, no `hypot`), the
/// column scaling multiplies by the precomputed pivot inverse, and the
/// rank-1 trailing update runs on disjoint slices so the inner complex
/// axpy vectorises.
fn factor_kernel(
    n: usize,
    kl: usize,
    ku: usize,
    ab: &mut [Complex64],
    ipiv: &mut [usize],
) -> Result<(), SingularMatrixError> {
    let ldab = 2 * kl + ku + 1;
    let kv = kl + ku;
    debug_assert_eq!(ab.len(), ldab * n);
    debug_assert_eq!(ipiv.len(), n);

    for j in 0..n {
        // Number of sub-diagonal rows present in this column.
        let km = kl.min(n - 1 - j);
        let col = j * ldab + kv; // diagonal position within column j
                                 // Find pivot: largest |A(i,j)|² for i in j..=j+km.
        let mut jp = 0usize;
        let mut best = ab[col].norm_sqr();
        for (i, v) in ab[col + 1..=col + km].iter().enumerate() {
            let m = v.norm_sqr();
            if m > best {
                best = m;
                jp = i + 1;
            }
        }
        ipiv[j] = j + jp;
        if best == 0.0 {
            return Err(SingularMatrixError { column: j });
        }
        // Swap rows j and j+jp over columns j..=min(j+kv, n-1).
        let chi = (j + kv).min(n - 1);
        if jp != 0 {
            for c in j..=chi {
                // Row r of A in column c sits at ab[c*ldab + kv + r - c].
                let base = c * ldab + kv;
                ab.swap(base + j - c, base + j + jp - c);
            }
        }
        // Compute multipliers.
        let piv_inv = ab[col].inv();
        scal(piv_inv, &mut ab[col + 1..=col + km]);
        if km == 0 {
            continue;
        }
        // Rank-1 update of the trailing submatrix within the band. The
        // multiplier column (column j) always precedes column c in
        // storage, so a split at c's column start yields disjoint slices.
        for c in (j + 1)..=chi {
            let d = c - j;
            let (head, tail) = ab.split_at_mut(c * ldab);
            let t = tail[kv - d]; // A(j, c)
            if t.re != 0.0 || t.im != 0.0 {
                let src = &head[col + 1..=col + km];
                let dst = &mut tail[kv - d + 1..=kv - d + km];
                axpy_neg(t, src, dst);
            }
        }
    }
    Ok(())
}

/// Default number of right-hand-side columns per factor sweep in
/// [`BandedLu::solve_many`] / [`BandedLu::solve_transpose_many`].
///
/// Each factor column touches a `kl + ku + 1` window in every RHS; 32
/// columns keep those windows comfortably inside L2 for FDFD-scale
/// bandwidths while amortising the factor reads. The
/// `solve_many_rhs_blocking` criterion sweep
/// (`crates/bench/benches/solver.rs`, results in `BENCH_solver.json`)
/// shows a flat 16–32 optimum (~13% over block 4 at 64 RHS on a 64×64
/// grid); 32 is taken from that plateau so a full variation-corner batch
/// (≤ ~32 active columns) still costs a single factor read per sweep.
pub const RHS_BLOCK: usize = 32;

/// The LU factorisation of a [`BandedMatrix`], ready to solve systems.
#[derive(Clone)]
pub struct BandedLu {
    n: usize,
    kl: usize,
    ku: usize,
    ab: Vec<Complex64>,
    ipiv: Vec<usize>,
}

impl fmt::Debug for BandedLu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BandedLu(n={}, kl={}, ku={})", self.n, self.kl, self.ku)
    }
}

impl BandedLu {
    /// An empty factorisation slot for workspace reuse: fill it with
    /// [`BandedMatrix::factor_into`] before solving.
    pub fn placeholder() -> Self {
        Self {
            n: 0,
            kl: 0,
            ku: 0,
            ab: Vec::new(),
            ipiv: Vec::new(),
        }
    }

    /// Matrix dimension (0 for a [`BandedLu::placeholder`] never filled).
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline(always)]
    fn ldab(&self) -> usize {
        2 * self.kl + self.ku + 1
    }

    /// Solves `A x = b` in place (`b` becomes `x`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &mut [Complex64]) {
        assert_eq!(b.len(), self.n, "solve dimension mismatch");
        self.solve_many(b, 1);
    }

    /// Solves `A X = B` in place for `nrhs` right-hand sides stored
    /// column-major in `b` (`b.len() == n·nrhs`, column stride `n`).
    ///
    /// Right-hand sides advance through a **single sweep** over the
    /// factors (the `zgbtrs` blocking), so the factor data is read once
    /// per column instead of once per column *per RHS* — the batched form
    /// used for forward+adjoint pairs and multi-excitation objectives.
    /// Very large batches are processed [`RHS_BLOCK`] columns at a time so
    /// the active window of every right-hand side stays cache-resident
    /// (see [`BandedLu::solve_many_blocked`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use boson_num::banded::BandedMatrix;
    /// use boson_num::{c64, Complex64};
    ///
    /// let n = 6;
    /// let mut a = BandedMatrix::new(n, 1, 1);
    /// for i in 0..n {
    ///     a.set(i, i, c64(3.0, 0.5));
    ///     if i > 0 {
    ///         a.set(i, i - 1, c64(-1.0, 0.0));
    ///         a.set(i - 1, i, c64(-1.0, 0.0));
    ///     }
    /// }
    /// let check = a.clone();
    /// let lu = a.factor()?;
    /// // Two right-hand sides, column-major in one buffer; both are
    /// // solved in a single sweep over the factors.
    /// let mut b = vec![Complex64::ONE; 2 * n];
    /// for v in &mut b[n..] {
    ///     *v = c64(0.0, 2.0);
    /// }
    /// let rhs = b.clone();
    /// lu.solve_many(&mut b, 2);
    /// for col in 0..2 {
    ///     let ax = check.matvec(&b[col * n..(col + 1) * n]);
    ///     for (ax, b0) in ax.iter().zip(&rhs[col * n..(col + 1) * n]) {
    ///         assert!((*ax - *b0).abs() < 1e-12);
    ///     }
    /// }
    /// # Ok::<(), boson_num::banded::SingularMatrixError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * nrhs`.
    pub fn solve_many(&self, b: &mut [Complex64], nrhs: usize) {
        self.solve_many_blocked(b, nrhs, RHS_BLOCK);
    }

    /// [`BandedLu::solve_many`] with an explicit RHS block size: the batch
    /// is split into chunks of at most `block` columns and each chunk gets
    /// its own factor sweep.
    ///
    /// Per column `j` of the factors the substitution touches a window of
    /// `kl + ku + 1` entries in every right-hand side; once
    /// `nrhs × window` outgrows L2 those windows start evicting each
    /// other and the sweep turns memory-bound. Blocking trades extra
    /// factor reads (one sweep per chunk) for resident windows, which wins
    /// for large multi-wavelength batches. Columns are solved
    /// independently, so any block size gives bit-identical results; the
    /// [`RHS_BLOCK`] default was picked by the `solve_many_rhs_blocking`
    /// sweep in the `solver` criterion bench.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * nrhs` or `block == 0`.
    pub fn solve_many_blocked(&self, b: &mut [Complex64], nrhs: usize, block: usize) {
        assert_eq!(b.len(), self.n * nrhs, "solve_many dimension mismatch");
        assert!(block > 0, "RHS block size must be positive");
        for chunk in b.chunks_mut(self.n * block) {
            self.solve_sweep(chunk);
        }
    }

    /// One factor sweep over all columns of `b` (the pre-blocking
    /// [`BandedLu::solve_many`] body).
    fn solve_sweep(&self, b: &mut [Complex64]) {
        let n = self.n;
        let kl = self.kl;
        let ldab = self.ldab();
        let kv = kl + self.ku;
        // Solve L x = P b.
        for j in 0..n {
            let p = self.ipiv[j];
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kv;
            let l = &self.ab[col + 1..=col + km];
            for rhs in b.chunks_exact_mut(n) {
                if p != j {
                    rhs.swap(j, p);
                }
                let bj = rhs[j];
                axpy_neg(bj, l, &mut rhs[j + 1..=j + km]);
            }
        }
        // Solve U x = b (U has kv super-diagonals).
        for j in (0..n).rev() {
            let col = j * ldab + kv;
            let dinv = self.ab[col].inv();
            let reach = kv.min(j);
            let u = &self.ab[col - reach..col];
            for rhs in b.chunks_exact_mut(n) {
                let bj = rhs[j] * dinv;
                rhs[j] = bj;
                axpy_neg(bj, u, &mut rhs[j - reach..j]);
            }
        }
    }

    /// Solves `Aᵀ x = b` in place using the same factorisation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve_transpose(&self, b: &mut [Complex64]) {
        assert_eq!(b.len(), self.n, "solve_transpose dimension mismatch");
        self.solve_transpose_many(b, 1);
    }

    /// Transpose counterpart of [`BandedLu::solve_many`]: solves
    /// `Aᵀ X = B` for `nrhs` column-major right-hand sides, sweeping the
    /// factors once per [`RHS_BLOCK`]-column chunk.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * nrhs`.
    pub fn solve_transpose_many(&self, b: &mut [Complex64], nrhs: usize) {
        self.solve_transpose_many_blocked(b, nrhs, RHS_BLOCK);
    }

    /// [`BandedLu::solve_transpose_many`] with an explicit RHS block size
    /// (see [`BandedLu::solve_many_blocked`] for the trade-off).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * nrhs` or `block == 0`.
    pub fn solve_transpose_many_blocked(&self, b: &mut [Complex64], nrhs: usize, block: usize) {
        assert_eq!(
            b.len(),
            self.n * nrhs,
            "solve_transpose_many dimension mismatch"
        );
        assert!(block > 0, "RHS block size must be positive");
        for chunk in b.chunks_mut(self.n * block) {
            self.solve_transpose_sweep(chunk);
        }
    }

    /// One factor sweep of the transpose substitution over all columns of
    /// `b`.
    fn solve_transpose_sweep(&self, b: &mut [Complex64]) {
        let n = self.n;
        let kl = self.kl;
        let ldab = self.ldab();
        let kv = kl + self.ku;
        // Solve Uᵀ y = b: forward substitution.
        for j in 0..n {
            let col = j * ldab + kv;
            let dinv = self.ab[col].inv();
            let reach = kv.min(j);
            let u = &self.ab[col - reach..col];
            for rhs in b.chunks_exact_mut(n) {
                let s = rhs[j] - dotu(u, &rhs[j - reach..j]);
                rhs[j] = s * dinv;
            }
        }
        // Solve Lᵀ z = y: backward, applying pivots in reverse.
        for j in (0..n).rev() {
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kv;
            let p = self.ipiv[j];
            let l = &self.ab[col + 1..=col + km];
            for rhs in b.chunks_exact_mut(n) {
                let s = rhs[j] - dotu(l, &rhs[j + 1..=j + km]);
                rhs[j] = s;
                if p != j {
                    rhs.swap(j, p);
                }
            }
        }
    }

    /// Convenience: solves into a fresh vector.
    pub fn solve_vec(&self, b: &[Complex64]) -> Vec<Complex64> {
        let mut x = b.to_vec();
        self.solve(&mut x);
        x
    }

    /// Convenience: transpose-solves into a fresh vector.
    pub fn solve_transpose_vec(&self, b: &[Complex64]) -> Vec<Complex64> {
        let mut x = b.to_vec();
        self.solve_transpose(&mut x);
        x
    }
}

/// A single-precision copy of a [`BandedLu`], used as an *approximate*
/// preconditioner application engine.
///
/// Triangular sweeps over FDFD-scale factors are memory-bound: the factor
/// image is read once per sweep and a 2-D operator's factors run to tens
/// of megabytes. Storing the factors in `f32` halves that traffic and
/// doubles the SIMD width, roughly halving the cost of every
/// preconditioner application — while the *preconditioned Krylov
/// iteration* still runs in `f64` and measures true `f64` residuals, so
/// solution accuracy is set by the outer iteration's tolerance, not by
/// the `f32` storage (the factors are approximate qua preconditioner
/// anyway). Do **not** use this type for direct solves.
///
/// The right-hand-side conversion scratch lives inside the struct, so
/// applies take `&mut self` and perform no heap allocation after warm-up.
#[derive(Debug, Clone, Default)]
pub struct BandedLuF32 {
    n: usize,
    kl: usize,
    ku: usize,
    /// Interleaved `(re, im)` single-precision factor image,
    /// `2·ldab·n` floats.
    ab: Vec<f32>,
    ipiv: Vec<usize>,
    /// Interleaved f32 RHS scratch for whole-block applies.
    scratch: Vec<f32>,
}

impl BandedLuF32 {
    /// An empty slot; fill with [`BandedLuF32::assign_from`].
    pub fn placeholder() -> Self {
        Self::default()
    }

    /// Matrix dimension (0 until assigned).
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rough size of the conversion scratch one [`BandedLuF32::solve_many_with_scratch`]
    /// call needs for `nrhs` columns (interleaved `f32` pairs); callers
    /// that pre-grow external scratches use this to stay allocation-free.
    pub fn scratch_len(&self, nrhs: usize) -> usize {
        2 * self.n * nrhs
    }

    /// Downconverts `lu`'s factors into this slot, reusing its buffers
    /// (no heap allocation once warm). The pivot sequence is shared —
    /// this is a storage conversion, not a refactorisation.
    pub fn assign_from(&mut self, lu: &BandedLu) {
        self.n = lu.n;
        self.kl = lu.kl;
        self.ku = lu.ku;
        self.ab.clear();
        self.ab
            .extend(lu.ab.iter().flat_map(|z| [z.re as f32, z.im as f32]));
        self.ipiv.clear();
        self.ipiv.extend_from_slice(&lu.ipiv);
    }

    /// Applies `M⁻¹` to `nrhs` column-major `f64` right-hand sides in
    /// place: converts to `f32`, sweeps the single-precision factors, and
    /// converts back.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n·nrhs` or the slot was never assigned.
    pub fn solve_many(&mut self, b: &mut [Complex64], nrhs: usize) {
        let Self {
            n,
            kl,
            ku,
            ab,
            ipiv,
            scratch,
        } = self;
        solve32_with(*n, *kl, *ku, ab, ipiv, scratch, b, nrhs, false);
    }

    /// Transpose counterpart of [`BandedLuF32::solve_many`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n·nrhs` or the slot was never assigned.
    pub fn solve_transpose_many(&mut self, b: &mut [Complex64], nrhs: usize) {
        let Self {
            n,
            kl,
            ku,
            ab,
            ipiv,
            scratch,
        } = self;
        solve32_with(*n, *kl, *ku, ab, ipiv, scratch, b, nrhs, true);
    }

    /// [`BandedLuF32::solve_many`] with a **caller-owned** conversion
    /// scratch, leaving `self` shared. This is what lets several threads
    /// (or a per-column preconditioner family holding many factors behind
    /// one shared borrow) sweep the same factor image concurrently — each
    /// caller brings its own scratch, the factors are read-only.
    /// Bit-identical to [`BandedLuF32::solve_many`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n·nrhs` or the slot was never assigned.
    pub fn solve_many_with_scratch(
        &self,
        scratch: &mut Vec<f32>,
        b: &mut [Complex64],
        nrhs: usize,
    ) {
        solve32_with(
            self.n, self.kl, self.ku, &self.ab, &self.ipiv, scratch, b, nrhs, false,
        );
    }

    /// Transpose counterpart of [`BandedLuF32::solve_many_with_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n·nrhs` or the slot was never assigned.
    pub fn solve_transpose_many_with_scratch(
        &self,
        scratch: &mut Vec<f32>,
        b: &mut [Complex64],
        nrhs: usize,
    ) {
        solve32_with(
            self.n, self.kl, self.ku, &self.ab, &self.ipiv, scratch, b, nrhs, true,
        );
    }
}

/// Shared body of every [`BandedLuF32`] apply: converts the `f64` block
/// into the interleaved-`f32` scratch, sweeps [`RHS_BLOCK`]-column chunks
/// over the single-precision factors, and converts back.
#[allow(clippy::too_many_arguments)] // destructured BandedLuF32 + solve args
fn solve32_with(
    n: usize,
    kl: usize,
    ku: usize,
    ab: &[f32],
    ipiv: &[usize],
    scratch: &mut Vec<f32>,
    b: &mut [Complex64],
    nrhs: usize,
    transpose: bool,
) {
    assert!(n > 0, "BandedLuF32 never assigned");
    assert_eq!(b.len(), n * nrhs, "solve dimension mismatch");
    scratch.clear();
    scratch.extend(b.iter().flat_map(|z| [z.re as f32, z.im as f32]));
    // Block the RHS like the f64 path so huge batches stay resident.
    let chunk_len = 2 * n * RHS_BLOCK;
    let ldab = 2 * kl + ku + 1;
    for chunk in scratch.chunks_mut(chunk_len) {
        if transpose {
            sweep32_transpose(n, kl, ku, ldab, ab, ipiv, chunk);
        } else {
            sweep32(n, kl, ku, ldab, ab, ipiv, chunk);
        }
    }
    for (dst, pair) in b.iter_mut().zip(scratch.chunks_exact(2)) {
        *dst = Complex64::new(pair[0] as f64, pair[1] as f64);
    }
}

/// `y[i] -= a·x[i]` over interleaved-complex `f32` slices.
#[inline]
fn axpy_neg32(a_re: f32, a_im: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yp, xp) in y.chunks_exact_mut(2).zip(x.chunks_exact(2)) {
        yp[0] -= xp[0] * a_re - xp[1] * a_im;
        yp[1] -= xp[0] * a_im + xp[1] * a_re;
    }
}

/// Unconjugated dot product over interleaved-complex `f32` slices.
#[inline]
fn dotu32(x: &[f32], y: &[f32]) -> (f32, f32) {
    debug_assert_eq!(x.len(), y.len());
    let mut re = 0.0f32;
    let mut im = 0.0f32;
    for (xp, yp) in x.chunks_exact(2).zip(y.chunks_exact(2)) {
        re += xp[0] * yp[0] - xp[1] * yp[1];
        im += xp[0] * yp[1] + xp[1] * yp[0];
    }
    (re, im)
}

/// Single-precision port of the forward sweep (`solve_sweep`) over
/// interleaved-complex storage. `b` holds whole columns (`2·n` floats
/// each).
fn sweep32(n: usize, kl: usize, ku: usize, ldab: usize, ab: &[f32], ipiv: &[usize], b: &mut [f32]) {
    let kv = kl + ku;
    // L x = P b.
    for j in 0..n {
        let p = ipiv[j];
        let km = kl.min(n - 1 - j);
        let col = 2 * (j * ldab + kv);
        let l = &ab[col + 2..col + 2 + 2 * km];
        for rhs in b.chunks_exact_mut(2 * n) {
            if p != j {
                rhs.swap(2 * j, 2 * p);
                rhs.swap(2 * j + 1, 2 * p + 1);
            }
            let (bre, bim) = (rhs[2 * j], rhs[2 * j + 1]);
            axpy_neg32(bre, bim, l, &mut rhs[2 * (j + 1)..2 * (j + 1 + km)]);
        }
    }
    // U x = b.
    for j in (0..n).rev() {
        let col = 2 * (j * ldab + kv);
        let (dre, dim_) = (ab[col], ab[col + 1]);
        let dn = dre * dre + dim_ * dim_;
        let (ire, iim) = (dre / dn, -dim_ / dn);
        let reach = kv.min(j);
        let u = &ab[col - 2 * reach..col];
        for rhs in b.chunks_exact_mut(2 * n) {
            let (bre, bim) = (rhs[2 * j], rhs[2 * j + 1]);
            let re = bre * ire - bim * iim;
            let im = bre * iim + bim * ire;
            rhs[2 * j] = re;
            rhs[2 * j + 1] = im;
            axpy_neg32(re, im, u, &mut rhs[2 * (j - reach)..2 * j]);
        }
    }
}

/// Single-precision port of the transpose sweep
/// (`solve_transpose_sweep`).
fn sweep32_transpose(
    n: usize,
    kl: usize,
    ku: usize,
    ldab: usize,
    ab: &[f32],
    ipiv: &[usize],
    b: &mut [f32],
) {
    let kv = kl + ku;
    // Uᵀ y = b: forward substitution.
    for j in 0..n {
        let col = 2 * (j * ldab + kv);
        let (dre, dim_) = (ab[col], ab[col + 1]);
        let dn = dre * dre + dim_ * dim_;
        let (ire, iim) = (dre / dn, -dim_ / dn);
        let reach = kv.min(j);
        let u = &ab[col - 2 * reach..col];
        for rhs in b.chunks_exact_mut(2 * n) {
            let (sre, sim) = dotu32(u, &rhs[2 * (j - reach)..2 * j]);
            let bre = rhs[2 * j] - sre;
            let bim = rhs[2 * j + 1] - sim;
            rhs[2 * j] = bre * ire - bim * iim;
            rhs[2 * j + 1] = bre * iim + bim * ire;
        }
    }
    // Lᵀ z = y: backward, applying pivots in reverse.
    for j in (0..n).rev() {
        let km = kl.min(n - 1 - j);
        let col = 2 * (j * ldab + kv);
        let p = ipiv[j];
        let l = &ab[col + 2..col + 2 + 2 * km];
        for rhs in b.chunks_exact_mut(2 * n) {
            let (sre, sim) = dotu32(l, &rhs[2 * (j + 1)..2 * (j + 1 + km)]);
            rhs[2 * j] -= sre;
            rhs[2 * j + 1] -= sim;
            if p != j {
                rhs.swap(2 * j, 2 * p);
                rhs.swap(2 * j + 1, 2 * p + 1);
            }
        }
    }
}

/// The seed's straightforward scalar implementation, kept verbatim as the
/// correctness baseline and as the naïve ("allocate per call, scalar
/// kernel") side of the `solver` criterion benchmark.
///
/// Do not optimise this module: its value is being the simple,
/// independently-written implementation the optimised kernels are checked
/// against (see `crates/num/tests/properties.rs`).
pub mod reference {
    use super::{BandedLu, BandedMatrix, SingularMatrixError};
    use crate::Complex64;

    /// Scalar `zgbtrf`, consuming the matrix (the seed's `factor`).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if an exactly-zero pivot is met.
    pub fn factor(mut a: BandedMatrix) -> Result<BandedLu, SingularMatrixError> {
        let n = a.n;
        let kl = a.kl;
        let ku = a.ku;
        let ldab = 2 * kl + ku + 1;
        let kv = kl + ku;
        let ab = &mut a.ab;
        let mut ipiv = vec![0usize; n];

        for j in 0..n {
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kl + ku;
            let mut jp = 0usize;
            let mut best = ab[col].abs();
            for i in 1..=km {
                let v = ab[col + i].abs();
                if v > best {
                    best = v;
                    jp = i;
                }
            }
            ipiv[j] = j + jp;
            if best == 0.0 {
                return Err(SingularMatrixError { column: j });
            }
            if jp != 0 {
                let chi = (j + kv).min(n - 1);
                for c in j..=chi {
                    let base = c * ldab + kl + ku;
                    let pa = base + j - c;
                    let pb = base + j + jp - c;
                    ab.swap(pa, pb);
                }
            }
            let piv = ab[col];
            for i in 1..=km {
                ab[col + i] /= piv;
            }
            let chi = (j + kv).min(n - 1);
            for c in (j + 1)..=chi {
                let base = c * ldab + kl + ku;
                let t = ab[base + j - c];
                if t.re != 0.0 || t.im != 0.0 {
                    for i in 1..=km {
                        let m = ab[col + i];
                        let dst = base + j + i - c;
                        ab[dst] -= m * t;
                    }
                }
            }
        }

        Ok(BandedLu {
            n,
            kl,
            ku,
            ab: std::mem::take(ab),
            ipiv,
        })
    }

    /// Scalar single-RHS substitution (the seed's `solve`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != lu.n()`.
    pub fn solve(lu: &BandedLu, b: &mut [Complex64]) {
        assert_eq!(b.len(), lu.n, "solve dimension mismatch");
        let n = lu.n;
        let kl = lu.kl;
        let ku = lu.ku;
        let ldab = 2 * kl + ku + 1;
        let kv = kl + ku;
        for j in 0..n {
            let p = lu.ipiv[j];
            if p != j {
                b.swap(j, p);
            }
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kl + ku;
            let bj = b[j];
            for i in 1..=km {
                b[j + i] -= lu.ab[col + i] * bj;
            }
        }
        for j in (0..n).rev() {
            let col = j * ldab + kl + ku;
            b[j] /= lu.ab[col];
            let bj = b[j];
            let reach = kv.min(j);
            for i in 1..=reach {
                b[j - i] -= lu.ab[col - i] * bj;
            }
        }
    }

    /// Scalar single-RHS transpose substitution (the seed's
    /// `solve_transpose`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != lu.n()`.
    pub fn solve_transpose(lu: &BandedLu, b: &mut [Complex64]) {
        assert_eq!(b.len(), lu.n, "solve_transpose dimension mismatch");
        let n = lu.n;
        let kl = lu.kl;
        let ku = lu.ku;
        let ldab = 2 * kl + ku + 1;
        let kv = kl + ku;
        for j in 0..n {
            let col = j * ldab + kl + ku;
            let mut s = b[j];
            let reach = kv.min(j);
            for i in 1..=reach {
                s -= lu.ab[col - i] * b[j - i];
            }
            b[j] = s / lu.ab[col];
        }
        for j in (0..n).rev() {
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kl + ku;
            let mut s = b[j];
            for i in 1..=km {
                s -= lu.ab[col + i] * b[j + i];
            }
            b[j] = s;
            let p = lu.ipiv[j];
            if p != j {
                b.swap(j, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    /// Build a well-conditioned random banded matrix with a dominant diagonal.
    fn random_banded(n: usize, kl: usize, ku: usize, seed: u64) -> BandedMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545F4914F6CDD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = BandedMatrix::new(n, kl, ku);
        for i in 0..n {
            for j in i.saturating_sub(kl)..=(i + ku).min(n - 1) {
                let mut v = c64(next(), next());
                if i == j {
                    v += c64(3.0 + (kl + ku) as f64, 1.0);
                }
                a.set(i, j, v);
            }
        }
        a
    }

    fn residual(a: &BandedMatrix, x: &[Complex64], b: &[Complex64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter()
            .zip(b)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn solve_identity() {
        let n = 7;
        let mut a = BandedMatrix::new(n, 2, 2);
        for i in 0..n {
            a.set(i, i, Complex64::ONE);
        }
        let lu = a.factor().unwrap();
        let b: Vec<_> = (0..n).map(|i| c64(i as f64, -(i as f64))).collect();
        let x = lu.solve_vec(&b);
        for (u, v) in x.iter().zip(&b) {
            assert!((*u - *v).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_random_systems_various_bandwidths() {
        for &(n, kl, ku) in &[
            (4usize, 1usize, 1usize),
            (10, 2, 3),
            (25, 4, 2),
            (40, 7, 7),
            (60, 1, 5),
        ] {
            let a = random_banded(n, kl, ku, (n * 31 + kl * 7 + ku) as u64);
            let b: Vec<_> = (0..n)
                .map(|i| c64((i as f64).cos(), (i as f64).sin()))
                .collect();
            let lu = a.clone().factor().unwrap();
            let x = lu.solve_vec(&b);
            let r = residual(&a, &x, &b);
            assert!(r < 1e-10, "residual {r} for n={n} kl={kl} ku={ku}");
        }
    }

    #[test]
    fn transpose_solve_random_systems() {
        for &(n, kl, ku) in &[(5usize, 1usize, 2usize), (12, 3, 3), (33, 6, 4), (48, 5, 9)] {
            let a = random_banded(n, kl, ku, (n * 13 + kl + ku * 3) as u64);
            let b: Vec<_> = (0..n)
                .map(|i| c64(1.0 / (i + 1) as f64, 0.3 * i as f64))
                .collect();
            let lu = a.clone().factor().unwrap();
            let x = lu.solve_transpose_vec(&b);
            // Residual against Aᵀ x = b.
            let atx = a.matvec_transpose(&x);
            let r = atx
                .iter()
                .zip(&b)
                .map(|(p, q)| (*p - *q).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(
                r < 1e-10,
                "transpose residual {r} for n={n} kl={kl} ku={ku}"
            );
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // A = [[0, 1], [1, 0]] requires a row swap.
        let mut a = BandedMatrix::new(2, 1, 1);
        a.set(0, 1, Complex64::ONE);
        a.set(1, 0, Complex64::ONE);
        let lu = a.factor().unwrap();
        let x = lu.solve_vec(&[c64(2.0, 0.0), c64(3.0, 0.0)]);
        assert!((x[0] - c64(3.0, 0.0)).abs() < 1e-14);
        assert!((x[1] - c64(2.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = BandedMatrix::new(3, 1, 1);
        a.set(0, 0, Complex64::ONE);
        a.set(0, 1, Complex64::ONE);
        // column 1 and row 1..2 left zero => singular
        let err = a.factor().unwrap_err();
        assert_eq!(err.column, 1);
        let msg = format!("{err}");
        assert!(msg.contains("singular"));
    }

    #[test]
    fn get_set_add_and_band_limits() {
        let mut a = BandedMatrix::new(5, 1, 2);
        assert!(a.in_band(0, 2));
        assert!(!a.in_band(0, 3));
        assert!(a.in_band(3, 2));
        assert!(!a.in_band(4, 2));
        a.set(2, 3, c64(5.0, 0.0));
        a.add(2, 3, c64(1.0, 1.0));
        assert_eq!(a.get(2, 3), c64(6.0, 1.0));
        assert_eq!(a.get(0, 4), Complex64::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside band")]
    fn out_of_band_write_panics() {
        let mut a = BandedMatrix::new(5, 1, 1);
        a.set(0, 4, Complex64::ONE);
    }

    #[test]
    fn matvec_matches_manual() {
        let mut a = BandedMatrix::new(3, 1, 1);
        a.set(0, 0, c64(1.0, 0.0));
        a.set(0, 1, c64(2.0, 0.0));
        a.set(1, 0, c64(3.0, 0.0));
        a.set(1, 1, c64(4.0, 0.0));
        a.set(1, 2, c64(5.0, 0.0));
        a.set(2, 1, c64(6.0, 0.0));
        a.set(2, 2, c64(7.0, 0.0));
        let x = [Complex64::ONE, c64(2.0, 0.0), c64(3.0, 0.0)];
        let y = a.matvec(&x);
        assert_eq!(y[0], c64(5.0, 0.0));
        assert_eq!(y[1], c64(26.0, 0.0));
        assert_eq!(y[2], c64(33.0, 0.0));
        let yt = a.matvec_transpose(&x);
        assert_eq!(yt[0], c64(7.0, 0.0));
        assert_eq!(yt[1], c64(28.0, 0.0));
        assert_eq!(yt[2], c64(31.0, 0.0));
    }

    #[test]
    fn asymmetry_detects_symmetric_matrices() {
        let mut a = BandedMatrix::new(4, 1, 1);
        for i in 0..4 {
            a.set(i, i, c64(2.0, -0.5));
        }
        for i in 0..3 {
            a.set(i, i + 1, c64(-1.0, 0.25));
            a.set(i + 1, i, c64(-1.0, 0.25));
        }
        assert!(a.asymmetry() < 1e-15);
        a.set(0, 1, c64(9.0, 0.0));
        assert!(a.asymmetry() > 0.1);
    }

    #[test]
    fn multiple_rhs_reuse_factorisation() {
        let n = 30;
        let a = random_banded(n, 3, 3, 99);
        let lu = a.clone().factor().unwrap();
        for k in 0..4 {
            let b: Vec<_> = (0..n)
                .map(|i| c64((i + k) as f64, (i * k) as f64 * 0.1))
                .collect();
            let x = lu.solve_vec(&b);
            assert!(residual(&a, &x, &b) < 1e-9);
        }
    }

    #[test]
    fn factor_into_matches_consuming_factor() {
        let a = random_banded(24, 3, 2, 5);
        let lu1 = a.clone().factor().unwrap();
        let mut lu2 = BandedLu::placeholder();
        a.factor_into(&mut lu2).unwrap();
        let b: Vec<_> = (0..24).map(|i| c64(i as f64, -0.5 * i as f64)).collect();
        let x1 = lu1.solve_vec(&b);
        let x2 = lu2.solve_vec(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((*p - *q).abs() < 1e-13);
        }
    }

    #[test]
    fn factor_into_is_allocation_stable_across_reuse() {
        // Buffer pointers must not move between reuses with equal shapes —
        // the workspace contract behind the zero-allocation pipeline.
        let mut a = random_banded(20, 2, 2, 1);
        let mut lu = BandedLu::placeholder();
        a.factor_into(&mut lu).unwrap();
        let ab_ptr = lu.ab.as_ptr();
        let ipiv_ptr = lu.ipiv.as_ptr();
        for seed in 2..6 {
            a.reset();
            let fresh = random_banded(20, 2, 2, seed);
            for i in 0..20usize {
                for j in i.saturating_sub(2)..=(i + 2).min(19) {
                    a.set(i, j, fresh.get(i, j));
                }
            }
            a.factor_into(&mut lu).unwrap();
            assert_eq!(lu.ab.as_ptr(), ab_ptr, "factor storage reallocated");
            assert_eq!(lu.ipiv.as_ptr(), ipiv_ptr, "pivot storage reallocated");
        }
    }

    #[test]
    fn solve_many_matches_column_by_column() {
        let n = 32;
        let a = random_banded(n, 4, 3, 77);
        let lu = a.clone().factor().unwrap();
        let nrhs = 5;
        let cols: Vec<Vec<Complex64>> = (0..nrhs)
            .map(|r| {
                (0..n)
                    .map(|i| c64((i * r + 1) as f64 * 0.1, (i + r) as f64 * 0.05))
                    .collect()
            })
            .collect();
        let mut block: Vec<Complex64> = cols.iter().flatten().copied().collect();
        lu.solve_many(&mut block, nrhs);
        for (r, col) in cols.iter().enumerate() {
            let x = lu.solve_vec(col);
            for (p, q) in x.iter().zip(&block[r * n..(r + 1) * n]) {
                assert!((*p - *q).abs() < 1e-12, "rhs {r} diverged");
            }
        }
    }

    #[test]
    fn solve_transpose_many_matches_column_by_column() {
        let n = 28;
        let a = random_banded(n, 3, 4, 55);
        let lu = a.clone().factor().unwrap();
        let nrhs = 3;
        let cols: Vec<Vec<Complex64>> = (0..nrhs)
            .map(|r| {
                (0..n)
                    .map(|i| c64((i + 2 * r) as f64 * 0.2, (i * i) as f64 * 0.01))
                    .collect()
            })
            .collect();
        let mut block: Vec<Complex64> = cols.iter().flatten().copied().collect();
        lu.solve_transpose_many(&mut block, nrhs);
        for (r, col) in cols.iter().enumerate() {
            let x = lu.solve_transpose_vec(col);
            for (p, q) in x.iter().zip(&block[r * n..(r + 1) * n]) {
                assert!((*p - *q).abs() < 1e-12, "rhs {r} diverged");
            }
        }
    }

    /// The caller-owned-scratch f32 applies are bit-identical to the
    /// internal-scratch ones (same sweeps, same chunking — only where the
    /// conversion buffer lives differs).
    #[test]
    fn f32_solve_with_external_scratch_is_bit_identical() {
        let n = 26;
        let a = random_banded(n, 3, 2, 77);
        let lu = a.factor().unwrap();
        let mut lu32 = BandedLuF32::placeholder();
        lu32.assign_from(&lu);
        let nrhs = 5;
        let b0: Vec<Complex64> = (0..n * nrhs)
            .map(|k| c64((k as f64 * 0.13).sin(), (k as f64 * 0.09).cos()))
            .collect();
        let mut scratch = Vec::new();
        for transpose in [false, true] {
            let mut internal = b0.clone();
            let mut external = b0.clone();
            if transpose {
                lu32.solve_transpose_many(&mut internal, nrhs);
            } else {
                lu32.solve_many(&mut internal, nrhs);
            }
            // Shared borrow + external scratch.
            let shared: &BandedLuF32 = &lu32;
            if transpose {
                shared.solve_transpose_many_with_scratch(&mut scratch, &mut external, nrhs);
            } else {
                shared.solve_many_with_scratch(&mut scratch, &mut external, nrhs);
            }
            assert_eq!(internal, external, "transpose={transpose}");
            assert!(scratch.capacity() >= lu32.scratch_len(nrhs));
        }
    }

    #[test]
    fn blocked_solve_many_matches_unblocked_for_any_block_size() {
        let n = 24;
        let a = random_banded(n, 3, 3, 123);
        let lu = a.factor().unwrap();
        let nrhs = 11;
        let block0: Vec<Complex64> = (0..n * nrhs)
            .map(|k| c64((k as f64 * 0.07).sin(), (k as f64 * 0.03).cos()))
            .collect();
        let mut reference = block0.clone();
        lu.solve_many_blocked(&mut reference, nrhs, nrhs); // single sweep
        let mut reference_t = block0.clone();
        lu.solve_transpose_many_blocked(&mut reference_t, nrhs, nrhs);
        for block in [1usize, 2, 3, 4, 8, 16, 64] {
            let mut b = block0.clone();
            lu.solve_many_blocked(&mut b, nrhs, block);
            assert_eq!(b, reference, "block={block}");
            let mut bt = block0.clone();
            lu.solve_transpose_many_blocked(&mut bt, nrhs, block);
            assert_eq!(bt, reference_t, "transpose block={block}");
        }
        // The default path is one of them.
        let mut b = block0.clone();
        lu.solve_many(&mut b, nrhs);
        assert_eq!(b, reference);
    }

    #[test]
    fn f32_preconditioner_tracks_f64_solves_to_single_precision() {
        let n = 40;
        let a = random_banded(n, 4, 4, 2024);
        let lu = a.clone().factor().unwrap();
        let mut lu32 = BandedLuF32::placeholder();
        lu32.assign_from(&lu);
        assert_eq!(lu32.n(), n);
        let nrhs = 3;
        let b0: Vec<Complex64> = (0..n * nrhs)
            .map(|k| c64((k as f64 * 0.11).sin(), (k as f64 * 0.07).cos()))
            .collect();
        for transpose in [false, true] {
            let mut exact = b0.clone();
            let mut approx = b0.clone();
            if transpose {
                lu.solve_transpose_many(&mut exact, nrhs);
                lu32.solve_transpose_many(&mut approx, nrhs);
            } else {
                lu.solve_many(&mut exact, nrhs);
                lu32.solve_many(&mut approx, nrhs);
            }
            let scale: f64 = exact.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
            let err: f64 = exact
                .iter()
                .zip(&approx)
                .map(|(p, q)| (*p - *q).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(
                err / scale < 1e-5,
                "transpose={transpose}: f32 sweep error {}",
                err / scale
            );
        }
        // Reassignment reuses buffers.
        let ab_ptr = {
            lu32.assign_from(&lu);
            lu32.ab.as_ptr()
        };
        lu32.assign_from(&lu);
        assert_eq!(ab_ptr, lu32.ab.as_ptr(), "f32 factor storage reallocated");
    }

    #[test]
    fn matvec_into_matches_allocating_matvec() {
        let n = 31;
        let a = random_banded(n, 4, 2, 17);
        let x: Vec<Complex64> = (0..n)
            .map(|i| c64((i as f64 * 0.2).cos(), (i as f64 * 0.11).sin()))
            .collect();
        let mut y = vec![c64(9.0, 9.0); n]; // poisoned: must be overwritten
        a.matvec_into(&x, &mut y);
        assert_eq!(y, a.matvec(&x));
        let mut yt = vec![c64(-3.0, 7.0); n];
        a.matvec_transpose_into(&x, &mut yt);
        assert_eq!(yt, a.matvec_transpose(&x));
    }

    #[test]
    fn optimised_factor_matches_reference() {
        for &(n, kl, ku) in &[(10usize, 2usize, 2usize), (30, 5, 3), (45, 8, 8)] {
            let a = random_banded(n, kl, ku, (n + kl * ku) as u64);
            let fast = a.clone().factor().unwrap();
            let slow = reference::factor(a.clone()).unwrap();
            let b: Vec<_> = (0..n)
                .map(|i| c64((i as f64).sin(), 0.2 * i as f64))
                .collect();
            let xf = fast.solve_vec(&b);
            let mut xs = b.clone();
            reference::solve(&slow, &mut xs);
            for (p, q) in xf.iter().zip(&xs) {
                assert!((*p - *q).abs() < 1e-10, "n={n} kl={kl} ku={ku}");
            }
            let xtf = fast.solve_transpose_vec(&b);
            let mut xts = b.clone();
            reference::solve_transpose(&slow, &mut xts);
            for (p, q) in xtf.iter().zip(&xts) {
                assert!((*p - *q).abs() < 1e-10, "transpose n={n} kl={kl} ku={ku}");
            }
        }
    }

    #[test]
    fn reset_and_reshape_keep_solutions_correct() {
        let mut a = random_banded(16, 2, 3, 9);
        let lu1 = a.clone().factor().unwrap();
        let b: Vec<_> = (0..16).map(|i| c64(1.0 + i as f64, 0.0)).collect();
        let x1 = lu1.solve_vec(&b);
        // Reset and refill with the identical matrix: same solution.
        let copy = random_banded(16, 2, 3, 9);
        a.reset();
        for i in 0..16usize {
            for j in i.saturating_sub(2)..=(i + 3).min(15) {
                a.set(i, j, copy.get(i, j));
            }
        }
        let x2 = a.clone().factor().unwrap().solve_vec(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((*p - *q).abs() < 1e-13);
        }
        // Reshape to a different bandwidth and solve a diagonal system.
        a.reshape(8, 1, 1);
        assert_eq!(a.n(), 8);
        for i in 0..8 {
            a.set(i, i, c64(2.0, 0.0));
        }
        let x3 = a.factor().unwrap().solve_vec(&[Complex64::ONE; 8]);
        for v in &x3 {
            assert!((*v - c64(0.5, 0.0)).abs() < 1e-14);
        }
    }
}
