//! Complex banded matrices and LU factorisation with partial pivoting.
//!
//! The 2-D FDFD Helmholtz operator is a 5-point stencil: with grid ordering
//! along the fast axis its bandwidth equals the fast-axis extent, so a
//! banded direct solver (the algorithm of LAPACK's `zgbtrf`/`zgbtrs`)
//! factors it in `O(n·b²)` time and solves each right-hand side in
//! `O(n·b)`. Both the forward solve and the transpose solve are provided —
//! the adjoint method solves `Aᵀλ = g` against the *same* factorisation.
//!
//! Storage is column-major LAPACK band format with `2·kl + ku + 1` rows per
//! column: the top `kl` rows are fill space for pivoting.
//!
//! # Workspace / ownership contract
//!
//! The solver supports two usage styles:
//!
//! * **One-shot** — [`BandedMatrix::factor`] consumes the matrix and moves
//!   its storage into the returned [`BandedLu`]; each call allocates fresh
//!   band storage via [`BandedMatrix::new`]. Simple, but in a hot loop the
//!   `(2·kl+ku+1)·n` complex allocation and its zero-fill dominate.
//! * **Workspace reuse** — the caller keeps one [`BandedMatrix`] (reset
//!   with [`BandedMatrix::reset`] / [`BandedMatrix::reshape`] between
//!   assemblies) and one [`BandedLu`] created once via
//!   [`BandedLu::placeholder`], then refilled with
//!   [`BandedMatrix::factor_into`]. After the first call, `factor_into`
//!   performs **zero heap allocations**: the band image is `memcpy`ed into
//!   the factor's existing buffer and factored in place. Multi-RHS solves
//!   go through [`BandedLu::solve_many`] / [`BandedLu::solve_transpose_many`]
//!   which make a *single* pass over the factors for all right-hand sides.
//!
//! The factorisation kernel is shared by both styles and is written in
//! slice/iterator form (no bounds checks in the inner loops) so the
//! compiler can vectorise the complex axpy updates; pivot selection uses
//! `|·|²` instead of `|·|` (equivalent argmax, no `hypot` per entry). The
//! seed's straightforward scalar implementation is preserved unchanged in
//! [`reference`] as the correctness baseline for property tests and as the
//! naïve side of the `solver` criterion bench.
//!
//! # Examples
//!
//! ```
//! use boson_num::{banded::BandedMatrix, c64, Complex64};
//!
//! // Tridiagonal system (kl = ku = 1): -u'' = f discretised.
//! let n = 5;
//! let mut a = BandedMatrix::new(n, 1, 1);
//! for i in 0..n {
//!     a.add(i, i, c64(2.0, 0.0));
//!     if i > 0 { a.add(i, i - 1, c64(-1.0, 0.0)); }
//!     if i + 1 < n { a.add(i, i + 1, c64(-1.0, 0.0)); }
//! }
//! let lu = a.factor()?;
//! let mut b = vec![Complex64::ONE; n];
//! lu.solve(&mut b);
//! // middle of the discrete parabola is the largest
//! assert!(b[2].re > b[0].re);
//! # Ok::<(), boson_num::banded::SingularMatrixError>(())
//! ```
//!
//! Allocation-free reuse across repeated factorisations:
//!
//! ```
//! use boson_num::banded::{BandedLu, BandedMatrix};
//! use boson_num::c64;
//!
//! let mut a = BandedMatrix::new(4, 1, 1);
//! let mut lu = BandedLu::placeholder();
//! for shift in [2.0, 3.0] {
//!     a.reset();
//!     for i in 0..4 { a.set(i, i, c64(shift, 0.0)); }
//!     a.factor_into(&mut lu).unwrap();
//!     let mut x = vec![c64(1.0, 0.0); 4];
//!     lu.solve(&mut x);
//!     assert!((x[0].re - 1.0 / shift).abs() < 1e-14);
//! }
//! ```

use crate::complex::{axpy_neg, dotu, scal};
use crate::Complex64;
use std::fmt;

/// Error returned when LU factorisation encounters an exactly-zero pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Column at which the zero pivot appeared.
    pub column: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is singular: zero pivot at column {}",
            self.column
        )
    }
}

impl std::error::Error for SingularMatrixError {}

/// A square complex matrix stored in LAPACK general-band format.
///
/// `kl` sub-diagonals and `ku` super-diagonals are representable; entries
/// outside the band are structurally zero.
#[derive(Clone)]
pub struct BandedMatrix {
    n: usize,
    kl: usize,
    ku: usize,
    /// Column-major band storage, `ldab = 2*kl + ku + 1` rows per column.
    ab: Vec<Complex64>,
}

impl fmt::Debug for BandedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BandedMatrix(n={}, kl={}, ku={})",
            self.n, self.kl, self.ku
        )
    }
}

impl BandedMatrix {
    /// Creates an all-zero `n×n` banded matrix with `kl` sub- and `ku`
    /// super-diagonals.
    pub fn new(n: usize, kl: usize, ku: usize) -> Self {
        let ldab = 2 * kl + ku + 1;
        Self {
            n,
            kl,
            ku,
            ab: vec![Complex64::ZERO; ldab * n],
        }
    }

    /// Matrix dimension.
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of sub-diagonals.
    #[inline(always)]
    pub fn kl(&self) -> usize {
        self.kl
    }

    /// Number of super-diagonals.
    #[inline(always)]
    pub fn ku(&self) -> usize {
        self.ku
    }

    #[inline(always)]
    fn ldab(&self) -> usize {
        2 * self.kl + self.ku + 1
    }

    /// Flat index of logical entry `(i, j)`; valid only inside the band.
    #[inline(always)]
    fn idx(&self, i: usize, j: usize) -> usize {
        // row within column j's band block: kl + ku + i - j
        j * self.ldab() + (self.kl + self.ku + i - j)
    }

    /// Zeroes the band storage in place, keeping the allocation.
    ///
    /// Part of the workspace-reuse contract: call before re-assembling an
    /// operator into a matrix that was already factored from.
    pub fn reset(&mut self) {
        self.ab.fill(Complex64::ZERO);
    }

    /// Reshapes to an all-zero `n×n` band with `kl`/`ku` diagonals,
    /// reusing the existing allocation when it is large enough.
    pub fn reshape(&mut self, n: usize, kl: usize, ku: usize) {
        let ldab = 2 * kl + ku + 1;
        self.n = n;
        self.kl = kl;
        self.ku = ku;
        self.ab.clear();
        self.ab.resize(ldab * n, Complex64::ZERO);
    }

    /// `true` when `(i, j)` lies inside the stored band.
    #[inline(always)]
    pub fn in_band(&self, i: usize, j: usize) -> bool {
        i < self.n && j < self.n && i + self.ku >= j && j + self.kl >= i
    }

    /// Adds `v` to entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the band.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(
            self.in_band(i, j),
            "entry ({i},{j}) outside band (n={}, kl={}, ku={})",
            self.n,
            self.kl,
            self.ku
        );
        let k = self.idx(i, j);
        self.ab[k] += v;
    }

    /// Overwrites entry `(i, j)` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the band.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(self.in_band(i, j), "entry ({i},{j}) outside band");
        let k = self.idx(i, j);
        self.ab[k] = v;
    }

    /// Returns entry `(i, j)` (zero outside the band).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        if self.in_band(i, j) {
            self.ab[self.idx(i, j)]
        } else {
            Complex64::ZERO
        }
    }

    /// Dense matrix–vector product `y = A x` (for tests and residuals).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.n, "matvec dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.n];
        for j in 0..self.n {
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            for i in ilo..=ihi {
                y[i] += self.ab[self.idx(i, j)] * x[j];
            }
        }
        y
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn matvec_transpose(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.n, "matvec_transpose dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.n];
        for j in 0..self.n {
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            for i in ilo..=ihi {
                y[j] += self.ab[self.idx(i, j)] * x[i];
            }
        }
        y
    }

    /// Maximum relative asymmetry `|A - Aᵀ|/|A|` over the band — used to
    /// verify that the symmetrised FDFD assembly really is symmetric.
    pub fn asymmetry(&self) -> f64 {
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for j in 0..self.n {
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            for i in ilo..=ihi {
                let a = self.get(i, j);
                let b = self.get(j, i);
                num = num.max((a - b).abs());
                den = den.max(a.abs());
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Factors the matrix (partial pivoting), consuming it.
    ///
    /// The band storage moves into the returned factorisation without a
    /// copy. For repeated factorisations prefer
    /// [`BandedMatrix::factor_into`], which keeps the assembly buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if an exactly-zero pivot is met.
    pub fn factor(mut self) -> Result<BandedLu, SingularMatrixError> {
        let mut ipiv = vec![0usize; self.n];
        factor_kernel(self.n, self.kl, self.ku, &mut self.ab, &mut ipiv)?;
        Ok(BandedLu {
            n: self.n,
            kl: self.kl,
            ku: self.ku,
            ab: std::mem::take(&mut self.ab),
            ipiv,
        })
    }

    /// Factors the matrix into a caller-owned [`BandedLu`], leaving the
    /// assembly intact.
    ///
    /// The band image is copied into `lu`'s existing storage and factored
    /// there; once `lu` has been used with the same dimensions before, the
    /// call performs no heap allocation. This is the workhorse of the
    /// zero-allocation simulation pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if an exactly-zero pivot is met (in
    /// which case `lu` holds garbage and must be refilled before use).
    pub fn factor_into(&self, lu: &mut BandedLu) -> Result<(), SingularMatrixError> {
        lu.n = self.n;
        lu.kl = self.kl;
        lu.ku = self.ku;
        lu.ab.clear();
        lu.ab.extend_from_slice(&self.ab);
        lu.ipiv.clear();
        lu.ipiv.resize(self.n, 0);
        factor_kernel(self.n, self.kl, self.ku, &mut lu.ab, &mut lu.ipiv)
    }

    /// Like [`BandedMatrix::factor_into`] but *swaps* band storage with
    /// `lu` instead of copying it, then factors in place — the band image
    /// in `self` is **destroyed** (replaced by `lu`'s previous storage,
    /// zero-padded to the right size, contents unspecified).
    ///
    /// This is the cheapest refactorisation path for workspaces that
    /// re-assemble from scratch each round anyway (call
    /// [`BandedMatrix::reset`] before the next assembly, as usual): it
    /// skips the `(2·kl+ku+1)·n` copy entirely and still performs zero
    /// heap allocations once both buffers are warm.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if an exactly-zero pivot is met.
    pub fn factor_swap_into(&mut self, lu: &mut BandedLu) -> Result<(), SingularMatrixError> {
        lu.n = self.n;
        lu.kl = self.kl;
        lu.ku = self.ku;
        std::mem::swap(&mut self.ab, &mut lu.ab);
        // `self` inherited `lu`'s previous storage; keep its length
        // consistent with the declared shape for the next reset+assembly.
        self.ab.resize(self.ldab() * self.n, Complex64::ZERO);
        lu.ipiv.clear();
        lu.ipiv.resize(self.n, 0);
        factor_kernel(self.n, self.kl, self.ku, &mut lu.ab, &mut lu.ipiv)
    }
}

/// The in-place `zgbtrf`-style kernel shared by [`BandedMatrix::factor`]
/// and [`BandedMatrix::factor_into`].
///
/// Pivot selection compares `|·|²` (same argmax as `|·|`, no `hypot`), the
/// column scaling multiplies by the precomputed pivot inverse, and the
/// rank-1 trailing update runs on disjoint slices so the inner complex
/// axpy vectorises.
fn factor_kernel(
    n: usize,
    kl: usize,
    ku: usize,
    ab: &mut [Complex64],
    ipiv: &mut [usize],
) -> Result<(), SingularMatrixError> {
    let ldab = 2 * kl + ku + 1;
    let kv = kl + ku;
    debug_assert_eq!(ab.len(), ldab * n);
    debug_assert_eq!(ipiv.len(), n);

    for j in 0..n {
        // Number of sub-diagonal rows present in this column.
        let km = kl.min(n - 1 - j);
        let col = j * ldab + kv; // diagonal position within column j
                                 // Find pivot: largest |A(i,j)|² for i in j..=j+km.
        let mut jp = 0usize;
        let mut best = ab[col].norm_sqr();
        for (i, v) in ab[col + 1..=col + km].iter().enumerate() {
            let m = v.norm_sqr();
            if m > best {
                best = m;
                jp = i + 1;
            }
        }
        ipiv[j] = j + jp;
        if best == 0.0 {
            return Err(SingularMatrixError { column: j });
        }
        // Swap rows j and j+jp over columns j..=min(j+kv, n-1).
        let chi = (j + kv).min(n - 1);
        if jp != 0 {
            for c in j..=chi {
                // Row r of A in column c sits at ab[c*ldab + kv + r - c].
                let base = c * ldab + kv;
                ab.swap(base + j - c, base + j + jp - c);
            }
        }
        // Compute multipliers.
        let piv_inv = ab[col].inv();
        scal(piv_inv, &mut ab[col + 1..=col + km]);
        if km == 0 {
            continue;
        }
        // Rank-1 update of the trailing submatrix within the band. The
        // multiplier column (column j) always precedes column c in
        // storage, so a split at c's column start yields disjoint slices.
        for c in (j + 1)..=chi {
            let d = c - j;
            let (head, tail) = ab.split_at_mut(c * ldab);
            let t = tail[kv - d]; // A(j, c)
            if t.re != 0.0 || t.im != 0.0 {
                let src = &head[col + 1..=col + km];
                let dst = &mut tail[kv - d + 1..=kv - d + km];
                axpy_neg(t, src, dst);
            }
        }
    }
    Ok(())
}

/// The LU factorisation of a [`BandedMatrix`], ready to solve systems.
#[derive(Clone)]
pub struct BandedLu {
    n: usize,
    kl: usize,
    ku: usize,
    ab: Vec<Complex64>,
    ipiv: Vec<usize>,
}

impl fmt::Debug for BandedLu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BandedLu(n={}, kl={}, ku={})", self.n, self.kl, self.ku)
    }
}

impl BandedLu {
    /// An empty factorisation slot for workspace reuse: fill it with
    /// [`BandedMatrix::factor_into`] before solving.
    pub fn placeholder() -> Self {
        Self {
            n: 0,
            kl: 0,
            ku: 0,
            ab: Vec::new(),
            ipiv: Vec::new(),
        }
    }

    /// Matrix dimension (0 for a [`BandedLu::placeholder`] never filled).
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline(always)]
    fn ldab(&self) -> usize {
        2 * self.kl + self.ku + 1
    }

    /// Solves `A x = b` in place (`b` becomes `x`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &mut [Complex64]) {
        assert_eq!(b.len(), self.n, "solve dimension mismatch");
        self.solve_many(b, 1);
    }

    /// Solves `A X = B` in place for `nrhs` right-hand sides stored
    /// column-major in `b` (`b.len() == n·nrhs`, column stride `n`).
    ///
    /// All right-hand sides advance through a **single sweep** over the
    /// factors (the `zgbtrs` blocking), so the factor data is read once
    /// per column instead of once per column *per RHS* — the batched form
    /// used for forward+adjoint pairs and multi-excitation objectives.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * nrhs`.
    pub fn solve_many(&self, b: &mut [Complex64], nrhs: usize) {
        let n = self.n;
        assert_eq!(b.len(), n * nrhs, "solve_many dimension mismatch");
        let kl = self.kl;
        let ldab = self.ldab();
        let kv = kl + self.ku;
        // Solve L x = P b.
        for j in 0..n {
            let p = self.ipiv[j];
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kv;
            let l = &self.ab[col + 1..=col + km];
            for rhs in b.chunks_exact_mut(n) {
                if p != j {
                    rhs.swap(j, p);
                }
                let bj = rhs[j];
                axpy_neg(bj, l, &mut rhs[j + 1..=j + km]);
            }
        }
        // Solve U x = b (U has kv super-diagonals).
        for j in (0..n).rev() {
            let col = j * ldab + kv;
            let dinv = self.ab[col].inv();
            let reach = kv.min(j);
            let u = &self.ab[col - reach..col];
            for rhs in b.chunks_exact_mut(n) {
                let bj = rhs[j] * dinv;
                rhs[j] = bj;
                axpy_neg(bj, u, &mut rhs[j - reach..j]);
            }
        }
    }

    /// Solves `Aᵀ x = b` in place using the same factorisation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve_transpose(&self, b: &mut [Complex64]) {
        assert_eq!(b.len(), self.n, "solve_transpose dimension mismatch");
        self.solve_transpose_many(b, 1);
    }

    /// Transpose counterpart of [`BandedLu::solve_many`]: solves
    /// `Aᵀ X = B` for `nrhs` column-major right-hand sides in one sweep.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * nrhs`.
    pub fn solve_transpose_many(&self, b: &mut [Complex64], nrhs: usize) {
        let n = self.n;
        assert_eq!(b.len(), n * nrhs, "solve_transpose_many dimension mismatch");
        let kl = self.kl;
        let ldab = self.ldab();
        let kv = kl + self.ku;
        // Solve Uᵀ y = b: forward substitution.
        for j in 0..n {
            let col = j * ldab + kv;
            let dinv = self.ab[col].inv();
            let reach = kv.min(j);
            let u = &self.ab[col - reach..col];
            for rhs in b.chunks_exact_mut(n) {
                let s = rhs[j] - dotu(u, &rhs[j - reach..j]);
                rhs[j] = s * dinv;
            }
        }
        // Solve Lᵀ z = y: backward, applying pivots in reverse.
        for j in (0..n).rev() {
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kv;
            let p = self.ipiv[j];
            let l = &self.ab[col + 1..=col + km];
            for rhs in b.chunks_exact_mut(n) {
                let s = rhs[j] - dotu(l, &rhs[j + 1..=j + km]);
                rhs[j] = s;
                if p != j {
                    rhs.swap(j, p);
                }
            }
        }
    }

    /// Convenience: solves into a fresh vector.
    pub fn solve_vec(&self, b: &[Complex64]) -> Vec<Complex64> {
        let mut x = b.to_vec();
        self.solve(&mut x);
        x
    }

    /// Convenience: transpose-solves into a fresh vector.
    pub fn solve_transpose_vec(&self, b: &[Complex64]) -> Vec<Complex64> {
        let mut x = b.to_vec();
        self.solve_transpose(&mut x);
        x
    }
}

/// The seed's straightforward scalar implementation, kept verbatim as the
/// correctness baseline and as the naïve ("allocate per call, scalar
/// kernel") side of the `solver` criterion benchmark.
///
/// Do not optimise this module: its value is being the simple,
/// independently-written implementation the optimised kernels are checked
/// against (see `crates/num/tests/properties.rs`).
pub mod reference {
    use super::{BandedLu, BandedMatrix, SingularMatrixError};
    use crate::Complex64;

    /// Scalar `zgbtrf`, consuming the matrix (the seed's `factor`).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if an exactly-zero pivot is met.
    pub fn factor(mut a: BandedMatrix) -> Result<BandedLu, SingularMatrixError> {
        let n = a.n;
        let kl = a.kl;
        let ku = a.ku;
        let ldab = 2 * kl + ku + 1;
        let kv = kl + ku;
        let ab = &mut a.ab;
        let mut ipiv = vec![0usize; n];

        for j in 0..n {
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kl + ku;
            let mut jp = 0usize;
            let mut best = ab[col].abs();
            for i in 1..=km {
                let v = ab[col + i].abs();
                if v > best {
                    best = v;
                    jp = i;
                }
            }
            ipiv[j] = j + jp;
            if best == 0.0 {
                return Err(SingularMatrixError { column: j });
            }
            if jp != 0 {
                let chi = (j + kv).min(n - 1);
                for c in j..=chi {
                    let base = c * ldab + kl + ku;
                    let pa = base + j - c;
                    let pb = base + j + jp - c;
                    ab.swap(pa, pb);
                }
            }
            let piv = ab[col];
            for i in 1..=km {
                ab[col + i] /= piv;
            }
            let chi = (j + kv).min(n - 1);
            for c in (j + 1)..=chi {
                let base = c * ldab + kl + ku;
                let t = ab[base + j - c];
                if t.re != 0.0 || t.im != 0.0 {
                    for i in 1..=km {
                        let m = ab[col + i];
                        let dst = base + j + i - c;
                        ab[dst] -= m * t;
                    }
                }
            }
        }

        Ok(BandedLu {
            n,
            kl,
            ku,
            ab: std::mem::take(ab),
            ipiv,
        })
    }

    /// Scalar single-RHS substitution (the seed's `solve`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != lu.n()`.
    pub fn solve(lu: &BandedLu, b: &mut [Complex64]) {
        assert_eq!(b.len(), lu.n, "solve dimension mismatch");
        let n = lu.n;
        let kl = lu.kl;
        let ku = lu.ku;
        let ldab = 2 * kl + ku + 1;
        let kv = kl + ku;
        for j in 0..n {
            let p = lu.ipiv[j];
            if p != j {
                b.swap(j, p);
            }
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kl + ku;
            let bj = b[j];
            for i in 1..=km {
                b[j + i] -= lu.ab[col + i] * bj;
            }
        }
        for j in (0..n).rev() {
            let col = j * ldab + kl + ku;
            b[j] /= lu.ab[col];
            let bj = b[j];
            let reach = kv.min(j);
            for i in 1..=reach {
                b[j - i] -= lu.ab[col - i] * bj;
            }
        }
    }

    /// Scalar single-RHS transpose substitution (the seed's
    /// `solve_transpose`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != lu.n()`.
    pub fn solve_transpose(lu: &BandedLu, b: &mut [Complex64]) {
        assert_eq!(b.len(), lu.n, "solve_transpose dimension mismatch");
        let n = lu.n;
        let kl = lu.kl;
        let ku = lu.ku;
        let ldab = 2 * kl + ku + 1;
        let kv = kl + ku;
        for j in 0..n {
            let col = j * ldab + kl + ku;
            let mut s = b[j];
            let reach = kv.min(j);
            for i in 1..=reach {
                s -= lu.ab[col - i] * b[j - i];
            }
            b[j] = s / lu.ab[col];
        }
        for j in (0..n).rev() {
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kl + ku;
            let mut s = b[j];
            for i in 1..=km {
                s -= lu.ab[col + i] * b[j + i];
            }
            b[j] = s;
            let p = lu.ipiv[j];
            if p != j {
                b.swap(j, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    /// Build a well-conditioned random banded matrix with a dominant diagonal.
    fn random_banded(n: usize, kl: usize, ku: usize, seed: u64) -> BandedMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545F4914F6CDD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = BandedMatrix::new(n, kl, ku);
        for i in 0..n {
            for j in i.saturating_sub(kl)..=(i + ku).min(n - 1) {
                let mut v = c64(next(), next());
                if i == j {
                    v += c64(3.0 + (kl + ku) as f64, 1.0);
                }
                a.set(i, j, v);
            }
        }
        a
    }

    fn residual(a: &BandedMatrix, x: &[Complex64], b: &[Complex64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter()
            .zip(b)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn solve_identity() {
        let n = 7;
        let mut a = BandedMatrix::new(n, 2, 2);
        for i in 0..n {
            a.set(i, i, Complex64::ONE);
        }
        let lu = a.factor().unwrap();
        let b: Vec<_> = (0..n).map(|i| c64(i as f64, -(i as f64))).collect();
        let x = lu.solve_vec(&b);
        for (u, v) in x.iter().zip(&b) {
            assert!((*u - *v).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_random_systems_various_bandwidths() {
        for &(n, kl, ku) in &[
            (4usize, 1usize, 1usize),
            (10, 2, 3),
            (25, 4, 2),
            (40, 7, 7),
            (60, 1, 5),
        ] {
            let a = random_banded(n, kl, ku, (n * 31 + kl * 7 + ku) as u64);
            let b: Vec<_> = (0..n)
                .map(|i| c64((i as f64).cos(), (i as f64).sin()))
                .collect();
            let lu = a.clone().factor().unwrap();
            let x = lu.solve_vec(&b);
            let r = residual(&a, &x, &b);
            assert!(r < 1e-10, "residual {r} for n={n} kl={kl} ku={ku}");
        }
    }

    #[test]
    fn transpose_solve_random_systems() {
        for &(n, kl, ku) in &[(5usize, 1usize, 2usize), (12, 3, 3), (33, 6, 4), (48, 5, 9)] {
            let a = random_banded(n, kl, ku, (n * 13 + kl + ku * 3) as u64);
            let b: Vec<_> = (0..n)
                .map(|i| c64(1.0 / (i + 1) as f64, 0.3 * i as f64))
                .collect();
            let lu = a.clone().factor().unwrap();
            let x = lu.solve_transpose_vec(&b);
            // Residual against Aᵀ x = b.
            let atx = a.matvec_transpose(&x);
            let r = atx
                .iter()
                .zip(&b)
                .map(|(p, q)| (*p - *q).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(
                r < 1e-10,
                "transpose residual {r} for n={n} kl={kl} ku={ku}"
            );
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // A = [[0, 1], [1, 0]] requires a row swap.
        let mut a = BandedMatrix::new(2, 1, 1);
        a.set(0, 1, Complex64::ONE);
        a.set(1, 0, Complex64::ONE);
        let lu = a.factor().unwrap();
        let x = lu.solve_vec(&[c64(2.0, 0.0), c64(3.0, 0.0)]);
        assert!((x[0] - c64(3.0, 0.0)).abs() < 1e-14);
        assert!((x[1] - c64(2.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = BandedMatrix::new(3, 1, 1);
        a.set(0, 0, Complex64::ONE);
        a.set(0, 1, Complex64::ONE);
        // column 1 and row 1..2 left zero => singular
        let err = a.factor().unwrap_err();
        assert_eq!(err.column, 1);
        let msg = format!("{err}");
        assert!(msg.contains("singular"));
    }

    #[test]
    fn get_set_add_and_band_limits() {
        let mut a = BandedMatrix::new(5, 1, 2);
        assert!(a.in_band(0, 2));
        assert!(!a.in_band(0, 3));
        assert!(a.in_band(3, 2));
        assert!(!a.in_band(4, 2));
        a.set(2, 3, c64(5.0, 0.0));
        a.add(2, 3, c64(1.0, 1.0));
        assert_eq!(a.get(2, 3), c64(6.0, 1.0));
        assert_eq!(a.get(0, 4), Complex64::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside band")]
    fn out_of_band_write_panics() {
        let mut a = BandedMatrix::new(5, 1, 1);
        a.set(0, 4, Complex64::ONE);
    }

    #[test]
    fn matvec_matches_manual() {
        let mut a = BandedMatrix::new(3, 1, 1);
        a.set(0, 0, c64(1.0, 0.0));
        a.set(0, 1, c64(2.0, 0.0));
        a.set(1, 0, c64(3.0, 0.0));
        a.set(1, 1, c64(4.0, 0.0));
        a.set(1, 2, c64(5.0, 0.0));
        a.set(2, 1, c64(6.0, 0.0));
        a.set(2, 2, c64(7.0, 0.0));
        let x = [Complex64::ONE, c64(2.0, 0.0), c64(3.0, 0.0)];
        let y = a.matvec(&x);
        assert_eq!(y[0], c64(5.0, 0.0));
        assert_eq!(y[1], c64(26.0, 0.0));
        assert_eq!(y[2], c64(33.0, 0.0));
        let yt = a.matvec_transpose(&x);
        assert_eq!(yt[0], c64(7.0, 0.0));
        assert_eq!(yt[1], c64(28.0, 0.0));
        assert_eq!(yt[2], c64(31.0, 0.0));
    }

    #[test]
    fn asymmetry_detects_symmetric_matrices() {
        let mut a = BandedMatrix::new(4, 1, 1);
        for i in 0..4 {
            a.set(i, i, c64(2.0, -0.5));
        }
        for i in 0..3 {
            a.set(i, i + 1, c64(-1.0, 0.25));
            a.set(i + 1, i, c64(-1.0, 0.25));
        }
        assert!(a.asymmetry() < 1e-15);
        a.set(0, 1, c64(9.0, 0.0));
        assert!(a.asymmetry() > 0.1);
    }

    #[test]
    fn multiple_rhs_reuse_factorisation() {
        let n = 30;
        let a = random_banded(n, 3, 3, 99);
        let lu = a.clone().factor().unwrap();
        for k in 0..4 {
            let b: Vec<_> = (0..n)
                .map(|i| c64((i + k) as f64, (i * k) as f64 * 0.1))
                .collect();
            let x = lu.solve_vec(&b);
            assert!(residual(&a, &x, &b) < 1e-9);
        }
    }

    #[test]
    fn factor_into_matches_consuming_factor() {
        let a = random_banded(24, 3, 2, 5);
        let lu1 = a.clone().factor().unwrap();
        let mut lu2 = BandedLu::placeholder();
        a.factor_into(&mut lu2).unwrap();
        let b: Vec<_> = (0..24).map(|i| c64(i as f64, -0.5 * i as f64)).collect();
        let x1 = lu1.solve_vec(&b);
        let x2 = lu2.solve_vec(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((*p - *q).abs() < 1e-13);
        }
    }

    #[test]
    fn factor_into_is_allocation_stable_across_reuse() {
        // Buffer pointers must not move between reuses with equal shapes —
        // the workspace contract behind the zero-allocation pipeline.
        let mut a = random_banded(20, 2, 2, 1);
        let mut lu = BandedLu::placeholder();
        a.factor_into(&mut lu).unwrap();
        let ab_ptr = lu.ab.as_ptr();
        let ipiv_ptr = lu.ipiv.as_ptr();
        for seed in 2..6 {
            a.reset();
            let fresh = random_banded(20, 2, 2, seed);
            for i in 0..20usize {
                for j in i.saturating_sub(2)..=(i + 2).min(19) {
                    a.set(i, j, fresh.get(i, j));
                }
            }
            a.factor_into(&mut lu).unwrap();
            assert_eq!(lu.ab.as_ptr(), ab_ptr, "factor storage reallocated");
            assert_eq!(lu.ipiv.as_ptr(), ipiv_ptr, "pivot storage reallocated");
        }
    }

    #[test]
    fn solve_many_matches_column_by_column() {
        let n = 32;
        let a = random_banded(n, 4, 3, 77);
        let lu = a.clone().factor().unwrap();
        let nrhs = 5;
        let cols: Vec<Vec<Complex64>> = (0..nrhs)
            .map(|r| {
                (0..n)
                    .map(|i| c64((i * r + 1) as f64 * 0.1, (i + r) as f64 * 0.05))
                    .collect()
            })
            .collect();
        let mut block: Vec<Complex64> = cols.iter().flatten().copied().collect();
        lu.solve_many(&mut block, nrhs);
        for (r, col) in cols.iter().enumerate() {
            let x = lu.solve_vec(col);
            for (p, q) in x.iter().zip(&block[r * n..(r + 1) * n]) {
                assert!((*p - *q).abs() < 1e-12, "rhs {r} diverged");
            }
        }
    }

    #[test]
    fn solve_transpose_many_matches_column_by_column() {
        let n = 28;
        let a = random_banded(n, 3, 4, 55);
        let lu = a.clone().factor().unwrap();
        let nrhs = 3;
        let cols: Vec<Vec<Complex64>> = (0..nrhs)
            .map(|r| {
                (0..n)
                    .map(|i| c64((i + 2 * r) as f64 * 0.2, (i * i) as f64 * 0.01))
                    .collect()
            })
            .collect();
        let mut block: Vec<Complex64> = cols.iter().flatten().copied().collect();
        lu.solve_transpose_many(&mut block, nrhs);
        for (r, col) in cols.iter().enumerate() {
            let x = lu.solve_transpose_vec(col);
            for (p, q) in x.iter().zip(&block[r * n..(r + 1) * n]) {
                assert!((*p - *q).abs() < 1e-12, "rhs {r} diverged");
            }
        }
    }

    #[test]
    fn optimised_factor_matches_reference() {
        for &(n, kl, ku) in &[(10usize, 2usize, 2usize), (30, 5, 3), (45, 8, 8)] {
            let a = random_banded(n, kl, ku, (n + kl * ku) as u64);
            let fast = a.clone().factor().unwrap();
            let slow = reference::factor(a.clone()).unwrap();
            let b: Vec<_> = (0..n)
                .map(|i| c64((i as f64).sin(), 0.2 * i as f64))
                .collect();
            let xf = fast.solve_vec(&b);
            let mut xs = b.clone();
            reference::solve(&slow, &mut xs);
            for (p, q) in xf.iter().zip(&xs) {
                assert!((*p - *q).abs() < 1e-10, "n={n} kl={kl} ku={ku}");
            }
            let xtf = fast.solve_transpose_vec(&b);
            let mut xts = b.clone();
            reference::solve_transpose(&slow, &mut xts);
            for (p, q) in xtf.iter().zip(&xts) {
                assert!((*p - *q).abs() < 1e-10, "transpose n={n} kl={kl} ku={ku}");
            }
        }
    }

    #[test]
    fn reset_and_reshape_keep_solutions_correct() {
        let mut a = random_banded(16, 2, 3, 9);
        let lu1 = a.clone().factor().unwrap();
        let b: Vec<_> = (0..16).map(|i| c64(1.0 + i as f64, 0.0)).collect();
        let x1 = lu1.solve_vec(&b);
        // Reset and refill with the identical matrix: same solution.
        let copy = random_banded(16, 2, 3, 9);
        a.reset();
        for i in 0..16usize {
            for j in i.saturating_sub(2)..=(i + 3).min(15) {
                a.set(i, j, copy.get(i, j));
            }
        }
        let x2 = a.clone().factor().unwrap().solve_vec(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((*p - *q).abs() < 1e-13);
        }
        // Reshape to a different bandwidth and solve a diagonal system.
        a.reshape(8, 1, 1);
        assert_eq!(a.n(), 8);
        for i in 0..8 {
            a.set(i, i, c64(2.0, 0.0));
        }
        let x3 = a.factor().unwrap().solve_vec(&[Complex64::ONE; 8]);
        for v in &x3 {
            assert!((*v - c64(0.5, 0.0)).abs() < 1e-14);
        }
    }
}
