//! Sync-primitive facade for the parallel substrate.
//!
//! [`crate::pool`] takes its `Mutex`/`Condvar`/atomics/thread-spawn
//! through this module instead of `std::sync` directly. Normally the
//! re-exports *are* the std types — zero indirection, zero cost. Under
//! the `model-check` cargo feature they become `boson_check`'s shims, so
//! the model-checker harness (`cargo test -p boson-check --features
//! model-check`) can exhaustively explore interleavings of the **actual**
//! dispatch protocol, not a transcription of it.
//!
//! The shims delegate to real std behaviour on any thread that is not
//! registered with a model execution, so even a `model-check` build is
//! fully functional outside the checker (cargo feature unification can
//! never corrupt an ordinary test run). The `xtask` invariant linter
//! pins raw `std::sync` use to this facade and the pool.

#[cfg(feature = "model-check")]
pub use boson_check::shim::{spawn_named, AtomicUsize, Condvar, Mutex, MutexGuard};

#[cfg(not(feature = "model-check"))]
pub use std::sync::atomic::AtomicUsize;
#[cfg(not(feature = "model-check"))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

// `Ordering` is a plain enum — the shims forward it, so both flavours
// share the std type.
pub use std::sync::atomic::Ordering;

/// Spawns a detached named thread. The substrate's workers go through
/// this wrapper so the model checker can schedule them; everything else
/// in the workspace is forbidden from spawning at all (enforced by
/// `cargo run -p xtask -- check`).
#[cfg(not(feature = "model-check"))]
pub fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("spawn substrate worker");
}
