//! Small statistics helpers for Monte-Carlo result aggregation.
//!
//! # Examples
//!
//! ```
//! use boson_num::stats::Summary;
//!
//! let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean, 2.5);
//! assert_eq!(s.min, 1.0);
//! assert_eq!(s.max, 4.0);
//! ```

/// Mean / standard deviation / extrema of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean (0 for empty input).
    pub mean: f64,
    /// Sample standard deviation (unbiased, 0 for n < 2).
    pub std: f64,
    /// Smallest sample (+inf for empty input).
    pub min: f64,
    /// Largest sample (-inf for empty input).
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a slice of samples.
    pub fn from_samples(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Self {
            n,
            mean,
            std: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Relative difference `|a-b| / max(|a|,|b|,floor)` used in tolerance checks.
///
/// ```
/// assert!(boson_num::stats::rel_diff(1.0, 1.0 + 1e-9, 1e-12) < 1e-8);
/// ```
pub fn rel_diff(a: f64, b: f64, floor: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        let e = Summary::from_samples(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::from_samples(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn rel_diff_symmetric() {
        assert_eq!(rel_diff(2.0, 4.0, 1e-12), rel_diff(4.0, 2.0, 1e-12));
        assert_eq!(rel_diff(0.0, 0.0, 1e-12), 0.0);
    }
}
