//! # boson-num — numerical kernels for the BOSON-1 stack
//!
//! This crate provides every numerical primitive the BOSON-1 photonic
//! inverse-design reproduction needs, implemented from scratch:
//!
//! * [`Complex64`] — double-precision complex scalar;
//! * [`Array2`] — dense row-major 2-D arrays used for fields, masks and
//!   permittivity maps;
//! * [`fft`] — radix-2 1-D/2-D FFTs powering the lithography convolutions;
//! * [`banded`] — LAPACK-style complex banded LU with partial pivoting, the
//!   direct solver behind the FDFD electromagnetic simulations (forward
//!   *and* transpose solves, so adjoint systems reuse the factorisation);
//! * [`krylov`] — preconditioned multi-RHS BiCGSTAB taking any
//!   [`banded::BandedLu`] as preconditioner; amortises one nominal
//!   factorisation across many nearby variation-corner solves;
//! * [`pool`] — the process-lifetime parallel substrate: long-lived
//!   workers, deterministic contiguous-chunk parallel-for,
//!   allocation-free steady-state dispatch; every parallel stage of the
//!   stack (fused preconditioner sweeps, multigrid column chunks,
//!   per-column Krylov stages, corner fan-out) runs on this one pool;
//! * [`tridiag`] — symmetric tridiagonal eigensolver (Sturm bisection +
//!   inverse iteration) used by the slab waveguide mode solver;
//! * [`jacobi`] — cyclic Jacobi eigensolver for the EOLE covariance
//!   matrices of the spatially-varying etching threshold field;
//! * [`stats`] — summary statistics for Monte-Carlo evaluation.
//!
//! # Examples
//!
//! Solving a small complex banded system:
//!
//! ```
//! use boson_num::{banded::BandedMatrix, c64, Complex64};
//!
//! let mut a = BandedMatrix::new(3, 1, 1);
//! a.set(0, 0, c64(2.0, 0.0));
//! a.set(1, 1, c64(2.0, 0.0));
//! a.set(2, 2, c64(2.0, 0.0));
//! a.set(0, 1, c64(-1.0, 0.0));
//! a.set(1, 2, c64(-1.0, 0.0));
//! a.set(1, 0, c64(-1.0, 0.0));
//! a.set(2, 1, c64(-1.0, 0.0));
//! let lu = a.factor()?;
//! let x = lu.solve_vec(&[Complex64::ONE; 3]);
//! assert!((x[1].re - 2.0).abs() < 1e-12);
//! # Ok::<(), boson_num::banded::SingularMatrixError>(())
//! ```

#![warn(missing_docs)]
// Index-style loops mirror the underlying linear-algebra notation; the
// iterator rewrites clippy suggests obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod array2;
pub mod banded;
pub mod complex;
pub mod dense;
pub mod fft;
pub mod jacobi;
pub mod krylov;
pub mod pool;
pub mod stats;
pub mod sync;
pub mod tridiag;

pub use array2::Array2;
pub use complex::{c64, Complex64};
