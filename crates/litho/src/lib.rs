//! # boson-litho — differentiable partially-coherent lithography
//!
//! A Hopkins-style partially-coherent projection-lithography model,
//! evaluated exactly by Abbe source-point quadrature with FFT-based
//! convolutions. The model is the `L_l` stage of the paper's compound
//! fabrication mapping `T_t ∘ E_η ∘ L_l ∘ P` and is fully differentiable:
//! [`LithoModel::vjp`] back-propagates cotangents from the aerial image to
//! the mask, so the adjoint optimisation is restricted to the fabricable
//! subspace *by construction*.
//!
//! Three process corners ([`LithoCorner`]) model defocus/dose variation:
//! `Min` erodes, `Nominal` reproduces, `Max` dilates the pattern.
//!
//! # Examples
//!
//! ```
//! use boson_litho::{LithoConfig, LithoCorner, LithoModel};
//! use boson_num::Array2;
//!
//! let model = LithoModel::new(32, 32, 0.05, LithoConfig::default());
//! let mask = Array2::from_fn(32, 32, |r, c| if r.abs_diff(16) < 6 && c.abs_diff(16) < 6 { 1.0 } else { 0.0 });
//! let img = model.aerial_image(&mask, LithoCorner::Nominal);
//! // The image is brightest inside the feature…
//! assert!(img.intensity[(16, 16)] > 0.5);
//! // …and sharp corners have been rounded by diffraction.
//! assert!(img.intensity[(11, 11)] < img.intensity[(16, 16)]);
//! ```

#![warn(missing_docs)]

pub mod kernels;
pub mod model;

pub use kernels::{LithoConfig, LithoCorner, SourcePoint};
pub use model::{AerialImage, LithoModel};
