//! The differentiable lithography forward model.
//!
//! [`LithoModel`] turns a binary/continuous mask into an aerial intensity
//! image for each process corner, and provides the exact vector–Jacobian
//! product so gradients can flow *through* the fabrication model back to
//! the design variables — the key enabler of the paper's
//! fabrication-restricted subspace optimisation (§III-C).

use crate::kernels::{source_points, transfer_function, LithoConfig, LithoCorner};
use boson_num::fft::{fft2, ifft2, next_pow2};
use boson_num::{Array2, Complex64};

/// A lithography imaging model for masks of a fixed shape.
///
/// Kernels for all three corners are precomputed at construction; each
/// [`LithoModel::aerial_image`] call costs `2·S` FFTs (S = source points).
#[derive(Debug, Clone)]
pub struct LithoModel {
    mask_rows: usize,
    mask_cols: usize,
    pad_rows: usize,
    pad_cols: usize,
    config: LithoConfig,
    /// `kernels[corner][source]` in FFT layout, plus the corner dose.
    kernels: Vec<(f64, Vec<Array2<Complex64>>)>,
}

/// The result of one forward imaging pass, retaining the per-source
/// amplitudes needed by the backward pass.
#[derive(Debug, Clone)]
pub struct AerialImage {
    /// Intensity on the mask grid (same shape as the input mask).
    pub intensity: Array2<f64>,
    corner_index: usize,
    /// Padded per-source complex amplitudes.
    amplitudes: Vec<Array2<Complex64>>,
}

impl LithoModel {
    /// Builds a model for `rows × cols` masks sampled at `dx` µm.
    ///
    /// # Panics
    ///
    /// Panics if the mask is empty.
    pub fn new(rows: usize, cols: usize, dx: f64, config: LithoConfig) -> Self {
        assert!(rows > 0 && cols > 0, "mask must be non-empty");
        // Pad by at least 16 cells each side to kill circular wrap-around,
        // then round up to a power of two for the FFT.
        let pad_rows = next_pow2(rows + 32);
        let pad_cols = next_pow2(cols + 32);
        let pts = source_points(&config);
        let kernels = LithoCorner::ALL
            .iter()
            .map(|&corner| {
                let (z, dose) = corner.settings(&config);
                let hs: Vec<Array2<Complex64>> = pts
                    .iter()
                    .map(|s| transfer_function(pad_rows, pad_cols, dx, &config, s, z))
                    .collect();
                (dose, hs)
            })
            .collect();
        Self {
            mask_rows: rows,
            mask_cols: cols,
            pad_rows,
            pad_cols,
            config,
            kernels,
        }
    }

    /// The optical configuration.
    pub fn config(&self) -> &LithoConfig {
        &self.config
    }

    /// Mask shape `(rows, cols)` accepted by this model.
    pub fn mask_shape(&self) -> (usize, usize) {
        (self.mask_rows, self.mask_cols)
    }

    fn corner_index(corner: LithoCorner) -> usize {
        match corner {
            LithoCorner::Min => 0,
            LithoCorner::Nominal => 1,
            LithoCorner::Max => 2,
        }
    }

    /// Computes the aerial intensity image of `mask` at `corner`.
    ///
    /// # Panics
    ///
    /// Panics if `mask` does not have the model's shape.
    pub fn aerial_image(&self, mask: &Array2<f64>, corner: LithoCorner) -> AerialImage {
        assert_eq!(
            mask.shape(),
            (self.mask_rows, self.mask_cols),
            "mask shape mismatch"
        );
        let ci = Self::corner_index(corner);
        let (dose, hs) = &self.kernels[ci];
        // Embed the mask centred in the padded grid.
        let r0 = (self.pad_rows - self.mask_rows) / 2;
        let c0 = (self.pad_cols - self.mask_cols) / 2;
        let mut m = Array2::<Complex64>::zeros(self.pad_rows, self.pad_cols);
        for r in 0..self.mask_rows {
            for c in 0..self.mask_cols {
                m[(r0 + r, c0 + c)] = Complex64::from_real(mask[(r, c)]);
            }
        }
        fft2(&mut m);

        let mut intensity_padded = Array2::<f64>::zeros(self.pad_rows, self.pad_cols);
        let mut amplitudes = Vec::with_capacity(hs.len());
        let weight = 1.0 / hs.len() as f64;
        for h in hs {
            let mut b = m.zip_map(h, |a, b| *a * *b);
            ifft2(&mut b);
            for (idx, v) in b.indexed_iter() {
                intensity_padded[idx] += dose * weight * v.norm_sqr();
            }
            amplitudes.push(b);
        }
        let intensity = intensity_padded.window(r0, c0, self.mask_rows, self.mask_cols);
        AerialImage {
            intensity,
            corner_index: ci,
            amplitudes,
        }
    }

    /// Vector–Jacobian product: given `v = ∂L/∂I` on the mask grid,
    /// returns `∂L/∂mask`.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or `fwd` came from a different model
    /// shape.
    pub fn vjp(&self, fwd: &AerialImage, v: &Array2<f64>) -> Array2<f64> {
        assert_eq!(
            v.shape(),
            (self.mask_rows, self.mask_cols),
            "cotangent shape mismatch"
        );
        let (dose, hs) = &self.kernels[fwd.corner_index];
        let weight = 1.0 / hs.len() as f64;
        let r0 = (self.pad_rows - self.mask_rows) / 2;
        let c0 = (self.pad_cols - self.mask_cols) / 2;
        // Pad the cotangent.
        let mut grad_padded = Array2::<f64>::zeros(self.pad_rows, self.pad_cols);
        for (h, a) in hs.iter().zip(&fwd.amplitudes) {
            // u = (dose·w·v) ⊙ conj(a) on the padded grid.
            let mut u = Array2::<Complex64>::zeros(self.pad_rows, self.pad_cols);
            for r in 0..self.mask_rows {
                for c in 0..self.mask_cols {
                    let vv = v[(r, c)] * dose * weight;
                    if vv != 0.0 {
                        u[(r0 + r, c0 + c)] = a[(r0 + r, c0 + c)].conj() * vv;
                    }
                }
            }
            // grad += 2·Re(FFT(H ⊙ IFFT(u))).
            ifft2(&mut u);
            let mut w = u.zip_map(h, |x, y| *x * *y);
            fft2(&mut w);
            for (idx, val) in w.indexed_iter() {
                grad_padded[idx] += 2.0 * val.re;
            }
        }
        grad_padded.window(r0, c0, self.mask_rows, self.mask_cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disc_mask(n: usize, radius_cells: f64) -> Array2<f64> {
        let c = n as f64 / 2.0;
        Array2::from_fn(n, n, |r, col| {
            let d = ((r as f64 - c).powi(2) + (col as f64 - c).powi(2)).sqrt();
            if d <= radius_cells {
                1.0
            } else {
                0.0
            }
        })
    }

    fn model(n: usize) -> LithoModel {
        LithoModel::new(n, n, 0.05, LithoConfig::default())
    }

    #[test]
    fn empty_mask_gives_dark_image() {
        let m = model(32);
        let img = m.aerial_image(&Array2::zeros(32, 32), LithoCorner::Nominal);
        assert!(img.intensity.max() < 1e-20);
    }

    #[test]
    fn large_pad_uniform_mask_is_bright_in_centre() {
        let m = model(48);
        let img = m.aerial_image(&Array2::filled(48, 48, 1.0), LithoCorner::Nominal);
        // Centre of a large clear field images to intensity ≈ 1.
        let centre = img.intensity[(24, 24)];
        assert!((centre - 1.0).abs() < 0.12, "centre intensity {centre}"); // Gibbs ringing from the hard pupil allows a few percent overshoot
    }

    #[test]
    fn subresolution_feature_is_wiped() {
        // A single-cell (50 nm) hole in a clear field is far below the
        // ~160 nm diffraction limit: the image barely dips.
        let m = model(48);
        let mut mask = Array2::filled(48, 48, 1.0);
        mask[(24, 24)] = 0.0;
        let img = m.aerial_image(&mask, LithoCorner::Nominal);
        let dip = 1.0 - img.intensity[(24, 24)];
        assert!(dip < 0.35, "sub-resolution dip too strong: {dip}");
        // Whereas a large hole does go dark.
        let mut mask2 = Array2::filled(48, 48, 1.0);
        for r in 16..32 {
            for c in 16..32 {
                mask2[(r, c)] = 0.0;
            }
        }
        let img2 = m.aerial_image(&mask2, LithoCorner::Nominal);
        assert!(img2.intensity[(24, 24)] < 0.2);
    }

    #[test]
    fn edges_are_smoothed() {
        // A sharp edge images to a gradual transition over ~λ/(2NA).
        let m = model(48);
        let mask = Array2::from_fn(48, 48, |_, c| if c >= 24 { 1.0 } else { 0.0 });
        let img = m.aerial_image(&mask, LithoCorner::Nominal);
        let mid = img.intensity[(24, 24)];
        // Edge intensity ≈ 0.25 for coherent, ~0.3-0.4 partially coherent.
        assert!(mid > 0.05 && mid < 0.7, "edge intensity {mid}");
        // Monotone-ish rise across the edge.
        assert!(img.intensity[(24, 20)] < img.intensity[(24, 28)]);
    }

    #[test]
    fn dose_corners_scale_intensity() {
        let m = model(32);
        let mask = disc_mask(32, 8.0);
        let i_min = m.aerial_image(&mask, LithoCorner::Min).intensity;
        let i_nom = m.aerial_image(&mask, LithoCorner::Nominal).intensity;
        let i_max = m.aerial_image(&mask, LithoCorner::Max).intensity;
        let c = (16, 16);
        assert!(i_min[c] < i_nom[c]);
        assert!(i_nom[c] < i_max[c]);
    }

    #[test]
    fn defocus_reduces_contrast() {
        let m = model(48);
        // Dense line pattern near the resolution limit.
        let mask = Array2::from_fn(48, 48, |_, c| if (c / 4) % 2 == 0 { 1.0 } else { 0.0 });
        let nom = m.aerial_image(&mask, LithoCorner::Nominal).intensity;
        let cfg = LithoConfig {
            dose_delta: 0.0, // isolate the defocus effect
            ..LithoConfig::default()
        };
        let m2 = LithoModel::new(48, 48, 0.05, cfg);
        let defoc = m2.aerial_image(&mask, LithoCorner::Max).intensity;
        let contrast = |img: &Array2<f64>| {
            let row = 24;
            let mut mx = 0.0f64;
            let mut mn = f64::INFINITY;
            for c in 12..36 {
                mx = mx.max(img[(row, c)]);
                mn = mn.min(img[(row, c)]);
            }
            (mx - mn) / (mx + mn)
        };
        assert!(
            contrast(&defoc) < contrast(&nom) + 1e-9,
            "defocus should not increase contrast: {} vs {}",
            contrast(&defoc),
            contrast(&nom)
        );
    }

    #[test]
    fn vjp_matches_finite_difference() {
        let n = 24;
        let m = model(n);
        let mask = disc_mask(n, 6.0);
        // Loss L = Σ w ⊙ I with a fixed random-ish weight field.
        let wfield = Array2::from_fn(n, n, |r, c| ((r * 7 + c * 13) % 5) as f64 * 0.25 - 0.5);
        for corner in LithoCorner::ALL {
            let fwd = m.aerial_image(&mask, corner);
            let grad = m.vjp(&fwd, &wfield);
            let h = 1e-6;
            for &(r, c) in &[(12usize, 12usize), (10, 14), (6, 6), (18, 11)] {
                let mut mp = mask.clone();
                mp[(r, c)] += h;
                let lp = m
                    .aerial_image(&mp, corner)
                    .intensity
                    .zip_map(&wfield, |a, b| a * b)
                    .sum();
                mp[(r, c)] -= 2.0 * h;
                let lm = m
                    .aerial_image(&mp, corner)
                    .intensity
                    .zip_map(&wfield, |a, b| a * b)
                    .sum();
                let fd = (lp - lm) / (2.0 * h);
                let ad = grad[(r, c)];
                assert!(
                    (fd - ad).abs() < 1e-6 + 1e-5 * fd.abs().max(ad.abs()),
                    "vjp mismatch at ({r},{c}) corner {corner:?}: fd={fd}, ad={ad}"
                );
            }
        }
    }

    #[test]
    fn image_linearity_in_intensity_is_quadratic_in_mask() {
        // Scaling the mask by t scales the intensity by t².
        let m = model(24);
        let mask = disc_mask(24, 6.0);
        let i1 = m.aerial_image(&mask, LithoCorner::Nominal).intensity;
        let half = mask.map(|v| 0.5 * v);
        let i2 = m.aerial_image(&half, LithoCorner::Nominal).intensity;
        for (idx, v) in i1.indexed_iter() {
            assert!((0.25 * v - i2[idx]).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "mask shape mismatch")]
    fn wrong_shape_panics() {
        let m = model(24);
        let _ = m.aerial_image(&Array2::zeros(23, 24), LithoCorner::Nominal);
    }
}
