//! Frequency-domain imaging kernels for the partially-coherent model.
//!
//! The Hopkins partially-coherent imaging integral is evaluated by Abbe's
//! source-point method: the extended illumination source is quadratured
//! into a small set of plane-wave directions; for each direction `s` the
//! coherent transfer function is the shifted, defocused pupil
//! `H_s(f) = P(f + f_s)·exp(iπλz|f + f_s|²)`, and the aerial image is the
//! incoherent sum `I = Σ_s w_s·|IFFT[M(f)·H_s(f)]|²`.
//!
//! The circular pupil `P` cuts off at `NA/λ`, which is what wipes
//! sub-diffraction features from the mask and confines fabricable
//! patterns to a low-dimensional subspace (paper §III-B1).

use boson_num::fft::freq_coord;
use boson_num::{Array2, Complex64};
use serde::{Deserialize, Serialize};

/// Optical configuration of the lithography projector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LithoConfig {
    /// Illumination wavelength in µm (DUV ≈ 0.193).
    pub lambda: f64,
    /// Numerical aperture of the projection lens.
    pub na: f64,
    /// Partial-coherence factor σ (source radius / pupil radius).
    pub sigma: f64,
    /// Defocus distance (µm) used by the min/max corners.
    pub defocus: f64,
    /// Dose excursion used by the corners (min = 1−dose_delta, …).
    pub dose_delta: f64,
}

impl Default for LithoConfig {
    fn default() -> Self {
        Self {
            lambda: 0.193,
            na: 0.6,
            sigma: 0.5,
            defocus: 0.15,
            dose_delta: 0.1,
        }
    }
}

impl LithoConfig {
    /// Diffraction-limited minimum feature size `λ/(2·NA)` in µm.
    pub fn min_feature(&self) -> f64 {
        self.lambda / (2.0 * self.na)
    }

    /// Pupil cutoff frequency `NA/λ` in cycles/µm.
    pub fn cutoff(&self) -> f64 {
        self.na / self.lambda
    }
}

/// Lithography process corner selector (paper's `L ∈ {l_min, l_norm, l_max}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LithoCorner {
    /// Defocused, under-dosed — erodes the pattern.
    Min,
    /// In focus, nominal dose.
    Nominal,
    /// Defocused, over-dosed — dilates the pattern.
    Max,
}

impl LithoCorner {
    /// All three corners in canonical order.
    pub const ALL: [LithoCorner; 3] = [LithoCorner::Min, LithoCorner::Nominal, LithoCorner::Max];

    /// `(defocus multiplier, dose multiplier)` for this corner.
    pub fn settings(self, cfg: &LithoConfig) -> (f64, f64) {
        match self {
            LithoCorner::Min => (cfg.defocus, 1.0 - cfg.dose_delta),
            LithoCorner::Nominal => (0.0, 1.0),
            LithoCorner::Max => (cfg.defocus, 1.0 + cfg.dose_delta),
        }
    }
}

/// One Abbe source point: a transverse frequency offset and its quadrature
/// weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourcePoint {
    /// Offset in cycles/µm along x.
    pub fx: f64,
    /// Offset in cycles/µm along y.
    pub fy: f64,
    /// Quadrature weight (weights sum to 1).
    pub weight: f64,
}

/// Standard 5-point source quadrature: centre + 4 axial points at radius
/// `σ·NA/λ·r_frac`.
pub fn source_points(cfg: &LithoConfig) -> Vec<SourcePoint> {
    let r = cfg.sigma * cfg.cutoff() * std::f64::consts::FRAC_1_SQRT_2;
    let w = 1.0 / 5.0;
    vec![
        SourcePoint {
            fx: 0.0,
            fy: 0.0,
            weight: w,
        },
        SourcePoint {
            fx: r,
            fy: 0.0,
            weight: w,
        },
        SourcePoint {
            fx: -r,
            fy: 0.0,
            weight: w,
        },
        SourcePoint {
            fx: 0.0,
            fy: r,
            weight: w,
        },
        SourcePoint {
            fx: 0.0,
            fy: -r,
            weight: w,
        },
    ]
}

/// Builds the frequency-domain transfer function `H_s(f)` on a padded
/// `rows × cols` FFT grid with sample pitch `dx`, for source point `s` and
/// defocus `z`.
pub fn transfer_function(
    rows: usize,
    cols: usize,
    dx: f64,
    cfg: &LithoConfig,
    s: &SourcePoint,
    defocus: f64,
) -> Array2<Complex64> {
    let cutoff = cfg.cutoff();
    Array2::from_fn(rows, cols, |r, c| {
        let fy = freq_coord(r, rows, dx) + s.fy;
        let fx = freq_coord(c, cols, dx) + s.fx;
        let f2 = fx * fx + fy * fy;
        if f2.sqrt() <= cutoff {
            // Paraxial defocus aberration phase.
            let phase = std::f64::consts::PI * cfg.lambda * defocus * f2;
            Complex64::cis(phase)
        } else {
            Complex64::ZERO
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_feature_matches_rayleigh() {
        let cfg = LithoConfig::default();
        assert!((cfg.min_feature() - 0.193 / 1.2).abs() < 1e-12);
    }

    #[test]
    fn corner_settings() {
        let cfg = LithoConfig::default();
        let (z0, d0) = LithoCorner::Nominal.settings(&cfg);
        assert_eq!((z0, d0), (0.0, 1.0));
        let (zm, dm) = LithoCorner::Min.settings(&cfg);
        assert!(zm > 0.0 && dm < 1.0);
        let (_, dx) = LithoCorner::Max.settings(&cfg);
        assert!(dx > 1.0);
    }

    #[test]
    fn source_points_sum_to_one() {
        let pts = source_points(&LithoConfig::default());
        let total: f64 = pts.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(pts.len(), 5);
        // All points inside the pupil (σ < 1).
        let cfg = LithoConfig::default();
        for p in &pts {
            assert!((p.fx * p.fx + p.fy * p.fy).sqrt() < cfg.cutoff());
        }
    }

    #[test]
    fn transfer_function_is_lowpass() {
        let cfg = LithoConfig::default();
        let s = SourcePoint {
            fx: 0.0,
            fy: 0.0,
            weight: 1.0,
        };
        let h = transfer_function(64, 64, 0.05, &cfg, &s, 0.0);
        // DC passes.
        assert_eq!(h[(0, 0)], Complex64::ONE);
        // Nyquist frequency at 0.05 µm pitch is 10 cyc/µm > cutoff 3.1:
        // high-frequency corner must be blocked.
        assert_eq!(h[(32, 32)], Complex64::ZERO);
        // In focus the passband is purely real 1.
        let passing = h.as_slice().iter().filter(|v| v.abs() > 0.0).count();
        assert!(passing > 0);
        for v in h.as_slice() {
            if v.abs() > 0.0 {
                assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn defocus_adds_phase() {
        let cfg = LithoConfig::default();
        let s = SourcePoint {
            fx: 0.0,
            fy: 0.0,
            weight: 1.0,
        };
        let h = transfer_function(64, 64, 0.05, &cfg, &s, 0.2);
        // Away from DC there must be nontrivial phase.
        let v = h[(0, 5)];
        assert!(v.abs() > 0.0);
        assert!(v.im.abs() > 1e-6, "defocus phase missing: {v:?}");
        // DC keeps zero phase.
        assert_eq!(h[(0, 0)], Complex64::ONE);
    }

    #[test]
    fn shifted_pupil_asymmetric() {
        let cfg = LithoConfig::default();
        let s = SourcePoint {
            fx: 1.5,
            fy: 0.0,
            weight: 1.0,
        };
        let h = transfer_function(64, 64, 0.05, &cfg, &s, 0.0);
        // The passband is shifted: count of passing bins on the +fx side
        // differs from the -fx side.
        let mut plus = 0;
        let mut minus = 0;
        for c in 1..32 {
            if h[(0, c)].abs() > 0.0 {
                plus += 1;
            }
            if h[(0, 64 - c)].abs() > 0.0 {
                minus += 1;
            }
        }
        assert_ne!(plus, minus, "shifted pupil should be asymmetric");
    }
}
