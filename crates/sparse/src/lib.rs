//! # boson-sparse — multigrid preconditioning and sparse iterative solvers
//!
//! The large-grid solver engine of the BOSON-1 stack, in two layers:
//!
//! * [`multigrid`] — a matrix-free **geometric multigrid V-cycle**
//!   preconditioner with `O(n)` setup and per-application cost. This is
//!   what breaks the `O(n·b²)` banded-LU wall: above a grid-size
//!   threshold the FDFD corner sweeps precondition BiCGSTAB with a
//!   V-cycle instead of a banded factor, so 256×256+ footprints solve in
//!   a handful of Krylov iterations without ever materialising a
//!   factorisation above the coarsest level.
//! * A compact CSR implementation plus a standalone BiCGSTAB solver,
//!   used to cross-validate the banded direct path on the exact same
//!   FDFD operators. [`CsrMatrix`] also implements
//!   [`boson_num::krylov::LinearOp`], so it can drive the production
//!   Krylov machinery (`bicgstab_precond_many` and friends) directly.
//!
//! # Examples
//!
//! ```
//! use boson_sparse::{CooMatrix, bicgstab, BicgstabOptions};
//! use boson_num::{c64, Complex64};
//!
//! let mut coo = CooMatrix::new(2, 2);
//! coo.push(0, 0, c64(4.0, 0.0));
//! coo.push(1, 1, c64(2.0, 0.0));
//! coo.push(0, 1, c64(1.0, 0.0));
//! let a = coo.to_csr();
//! let b = [c64(9.0, 0.0), c64(4.0, 0.0)];
//! let sol = bicgstab(&a, &b, &BicgstabOptions::default()).unwrap();
//! assert!((sol.x[1] - c64(2.0, 0.0)).abs() < 1e-8);
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

pub mod multigrid;

use boson_num::Complex64;
use std::fmt;

/// Triplet-format sparse matrix builder.
///
/// Duplicate entries are *summed* when converting to CSR, which is exactly
/// what stencil assembly wants.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, Complex64)>,
}

impl CooMatrix {
    /// Creates an empty `nrows × ncols` builder.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Appends entry `(i, j, v)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn push(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(
            i < self.nrows && j < self.ncols,
            "entry ({i},{j}) out of bounds"
        );
        self.entries.push((i, j, v));
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Converts to CSR, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&k| {
            let (i, j, _) = self.entries[k];
            (i, j)
        });
        let mut row_ptr = vec![0usize; self.nrows + 1];
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values: Vec<Complex64> = Vec::with_capacity(self.entries.len());
        let mut last: Option<(usize, usize)> = None;
        for &k in &order {
            let (i, j, v) = self.entries[k];
            if last == Some((i, j)) {
                *values.last_mut().expect("non-empty") += v;
            } else {
                col_idx.push(j);
                values.push(v);
                row_ptr[i + 1] += 1;
                last = Some((i, j));
            }
        }
        for r in 0..self.nrows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed sparse row matrix over [`Complex64`].
#[derive(Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Complex64>,
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix({}x{}, nnz={})",
            self.nrows,
            self.ncols,
            self.values.len()
        )
    }
}

impl CsrMatrix {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns entry `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => Complex64::ZERO,
        }
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product writing into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn matvec_into(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.nrows, "matvec output dimension mismatch");
        for i in 0..self.nrows {
            let mut acc = Complex64::ZERO;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[i] = acc;
        }
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn matvec_transpose(&self, x: &[Complex64]) -> Vec<Complex64> {
        let mut y = vec![Complex64::ZERO; self.ncols];
        self.matvec_transpose_into(x, &mut y);
        y
    }

    /// Transposed matrix–vector product writing into a caller-provided
    /// buffer (allocation-free counterpart of
    /// [`CsrMatrix::matvec_transpose`]).
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn matvec_transpose_into(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.nrows, "matvec_transpose dimension mismatch");
        assert_eq!(
            y.len(),
            self.ncols,
            "matvec_transpose output dimension mismatch"
        );
        y.fill(Complex64::ZERO);
        for i in 0..self.nrows {
            let xi = x[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                y[self.col_idx[k]] += self.values[k] * xi;
            }
        }
    }

    /// The diagonal of the matrix (used by the Jacobi preconditioner).
    pub fn diagonal(&self) -> Vec<Complex64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Maximum relative asymmetry over stored entries, `0` for symmetric.
    pub fn asymmetry(&self) -> f64 {
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..self.nrows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                let a = self.values[k];
                let b = self.get(j, i);
                num = num.max((a - b).abs());
                den = den.max(a.abs());
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

/// A square [`CsrMatrix`] is a [`boson_num::krylov::LinearOp`], so it can
/// drive `bicgstab_precond_many` and the rest of the production Krylov
/// machinery directly.
impl boson_num::krylov::LinearOp for CsrMatrix {
    fn dim(&self) -> usize {
        assert_eq!(self.nrows, self.ncols, "LinearOp requires a square matrix");
        self.nrows
    }

    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.matvec_into(x, y);
    }

    fn apply_transpose(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.matvec_transpose_into(x, y);
    }
}

/// Options controlling [`bicgstab`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BicgstabOptions {
    /// Relative residual tolerance ‖r‖/‖b‖ at which to declare convergence.
    pub tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
    /// Whether to apply Jacobi (diagonal) preconditioning.
    pub jacobi_precondition: bool,
}

impl Default for BicgstabOptions {
    fn default() -> Self {
        Self {
            tol: 1e-10,
            max_iter: 10_000,
            jacobi_precondition: true,
        }
    }
}

/// Successful BiCGSTAB result.
#[derive(Debug, Clone)]
pub struct BicgstabSolution {
    /// The solution vector.
    pub x: Vec<Complex64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Error returned when [`bicgstab`] fails to converge or breaks down.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveBreakdownError {
    /// Iterations performed before the failure.
    pub iterations: usize,
    /// Relative residual at the point of failure.
    pub residual: f64,
    /// Human-readable cause.
    pub cause: &'static str,
}

impl fmt::Display for SolveBreakdownError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bicgstab failed after {} iterations (residual {:.3e}): {}",
            self.iterations, self.residual, self.cause
        )
    }
}

impl std::error::Error for SolveBreakdownError {}

fn dot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum()
}

fn norm(a: &[Complex64]) -> f64 {
    a.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt()
}

/// Solves `A x = b` with (optionally Jacobi-preconditioned) BiCGSTAB.
///
/// # Errors
///
/// Returns [`SolveBreakdownError`] if the method stagnates, breaks down
/// (`ρ ≈ 0` or `ω ≈ 0`), encounters a non-finite right-hand side, scalar,
/// or residual norm (NaN/Inf fail immediately instead of sweeping the
/// iteration budget), or exhausts `max_iter` without reaching `tol`.
///
/// # Panics
///
/// Panics if `A` is not square or `b.len() != A.nrows()`.
pub fn bicgstab(
    a: &CsrMatrix,
    b: &[Complex64],
    opts: &BicgstabOptions,
) -> Result<BicgstabSolution, SolveBreakdownError> {
    assert_eq!(a.nrows(), a.ncols(), "bicgstab requires a square matrix");
    assert_eq!(b.len(), a.nrows(), "rhs dimension mismatch");
    let n = b.len();
    let bnorm_raw = norm(b);
    if !bnorm_raw.is_finite() {
        return Err(SolveBreakdownError {
            iterations: 0,
            residual: f64::NAN,
            cause: "non-finite right-hand side",
        });
    }
    let bnorm = bnorm_raw.max(f64::MIN_POSITIVE);

    let minv: Option<Vec<Complex64>> = if opts.jacobi_precondition {
        Some(
            a.diagonal()
                .iter()
                .map(|d| {
                    if d.abs() > 0.0 {
                        d.inv()
                    } else {
                        Complex64::ONE
                    }
                })
                .collect(),
        )
    } else {
        None
    };
    let precond = |v: &[Complex64]| -> Vec<Complex64> {
        match &minv {
            Some(m) => v.iter().zip(m).map(|(x, mi)| *x * *mi).collect(),
            None => v.to_vec(),
        }
    };

    let mut x = vec![Complex64::ZERO; n];
    let mut r = b.to_vec();
    let r_hat = r.clone();
    let mut rho = Complex64::ONE;
    let mut alpha = Complex64::ONE;
    let mut omega = Complex64::ONE;
    let mut v = vec![Complex64::ZERO; n];
    let mut p = vec![Complex64::ZERO; n];
    let mut res = norm(&r) / bnorm;
    if res <= opts.tol {
        return Ok(BicgstabSolution {
            x,
            iterations: 0,
            residual: res,
        });
    }

    for it in 1..=opts.max_iter {
        let rho_new = dot(&r_hat, &r);
        if !rho_new.abs().is_finite() {
            return Err(SolveBreakdownError {
                iterations: it,
                residual: res,
                cause: "non-finite rho",
            });
        }
        if rho_new.abs() < 1e-300 {
            return Err(SolveBreakdownError {
                iterations: it,
                residual: res,
                cause: "rho breakdown",
            });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        let p_hat = precond(&p);
        v = a.matvec(&p_hat);
        let denom = dot(&r_hat, &v);
        if !denom.abs().is_finite() {
            return Err(SolveBreakdownError {
                iterations: it,
                residual: res,
                cause: "non-finite alpha denominator",
            });
        }
        if denom.abs() < 1e-300 {
            return Err(SolveBreakdownError {
                iterations: it,
                residual: res,
                cause: "alpha breakdown",
            });
        }
        alpha = rho / denom;
        let s: Vec<Complex64> = (0..n).map(|i| r[i] - alpha * v[i]).collect();
        let snorm = norm(&s) / bnorm;
        if !snorm.is_finite() {
            return Err(SolveBreakdownError {
                iterations: it,
                residual: res,
                cause: "non-finite residual norm",
            });
        }
        if snorm <= opts.tol {
            for i in 0..n {
                x[i] += alpha * p_hat[i];
            }
            return Ok(BicgstabSolution {
                x,
                iterations: it,
                residual: snorm,
            });
        }
        let s_hat = precond(&s);
        let t = a.matvec(&s_hat);
        let tt = dot(&t, &t);
        if !tt.abs().is_finite() {
            return Err(SolveBreakdownError {
                iterations: it,
                residual: res,
                cause: "non-finite omega denominator",
            });
        }
        if tt.abs() < 1e-300 {
            return Err(SolveBreakdownError {
                iterations: it,
                residual: res,
                cause: "omega breakdown",
            });
        }
        omega = dot(&t, &s) / tt;
        for i in 0..n {
            x[i] += alpha * p_hat[i] + omega * s_hat[i];
            r[i] = s[i] - omega * t[i];
        }
        res = norm(&r) / bnorm;
        if !res.is_finite() {
            return Err(SolveBreakdownError {
                iterations: it,
                residual: res,
                cause: "non-finite residual norm",
            });
        }
        if res <= opts.tol {
            return Ok(BicgstabSolution {
                x,
                iterations: it,
                residual: res,
            });
        }
        if omega.abs() < 1e-300 {
            return Err(SolveBreakdownError {
                iterations: it,
                residual: res,
                cause: "omega breakdown",
            });
        }
    }
    Err(SolveBreakdownError {
        iterations: opts.max_iter,
        residual: res,
        cause: "max iterations exceeded",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use boson_num::c64;

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        // Standard 5-point Laplacian + small complex shift (well conditioned).
        let n = nx * ny;
        let mut coo = CooMatrix::new(n, n);
        for j in 0..ny {
            for i in 0..nx {
                let k = j * nx + i;
                coo.push(k, k, c64(4.2, 0.35));
                if i > 0 {
                    coo.push(k, k - 1, c64(-1.0, 0.0));
                }
                if i + 1 < nx {
                    coo.push(k, k + 1, c64(-1.0, 0.0));
                }
                if j > 0 {
                    coo.push(k, k - nx, c64(-1.0, 0.0));
                }
                if j + 1 < ny {
                    coo.push(k, k + nx, c64(-1.0, 0.0));
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn coo_duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, c64(1.0, 0.0));
        coo.push(0, 0, c64(2.0, 1.0));
        coo.push(1, 1, c64(5.0, 0.0));
        let a = coo.to_csr();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 0), c64(3.0, 1.0));
        assert_eq!(a.get(1, 1), c64(5.0, 0.0));
        assert_eq!(a.get(1, 0), Complex64::ZERO);
    }

    #[test]
    fn matvec_small_dense_check() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, c64(1.0, 0.0));
        coo.push(0, 2, c64(2.0, 0.0));
        coo.push(1, 1, c64(-1.0, 1.0));
        let a = coo.to_csr();
        let x = [Complex64::ONE, c64(2.0, 0.0), c64(3.0, 0.0)];
        let y = a.matvec(&x);
        assert_eq!(y[0], c64(7.0, 0.0));
        assert_eq!(y[1], c64(-2.0, 2.0));
        let yt = a.matvec_transpose(&y);
        assert_eq!(yt.len(), 3);
        assert_eq!(yt[2], c64(14.0, 0.0));
    }

    #[test]
    fn bicgstab_solves_laplacian() {
        let a = laplacian_2d(12, 9);
        let n = a.nrows();
        let b: Vec<Complex64> = (0..n).map(|i| c64((i as f64 * 0.1).sin(), 0.2)).collect();
        let sol = bicgstab(&a, &b, &BicgstabOptions::default()).unwrap();
        let r = a.matvec(&sol.x);
        let err: f64 = r
            .iter()
            .zip(&b)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-8, "residual {err} after {} iters", sol.iterations);
    }

    #[test]
    fn bicgstab_without_preconditioner() {
        let a = laplacian_2d(6, 6);
        let b = vec![Complex64::ONE; a.nrows()];
        let opts = BicgstabOptions {
            jacobi_precondition: false,
            ..Default::default()
        };
        let sol = bicgstab(&a, &b, &opts).unwrap();
        let r = a.matvec(&sol.x);
        let err: f64 = r
            .iter()
            .zip(&b)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-8);
    }

    #[test]
    fn bicgstab_zero_rhs_trivial() {
        let a = laplacian_2d(4, 4);
        let b = vec![Complex64::ZERO; a.nrows()];
        let sol = bicgstab(&a, &b, &BicgstabOptions::default()).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|v| v.abs() == 0.0));
    }

    #[test]
    fn bicgstab_max_iter_error() {
        let a = laplacian_2d(8, 8);
        let b = vec![Complex64::ONE; a.nrows()];
        let opts = BicgstabOptions {
            max_iter: 1,
            tol: 1e-300,
            ..Default::default()
        };
        let err = bicgstab(&a, &b, &opts).unwrap_err();
        assert!(format!("{err}").contains("bicgstab failed"));
    }

    #[test]
    fn bicgstab_nonfinite_rhs_is_immediate_breakdown() {
        let a = laplacian_2d(4, 4);
        let mut b = vec![Complex64::ONE; a.nrows()];
        b[3] = c64(f64::NAN, 0.0);
        let err = bicgstab(&a, &b, &BicgstabOptions::default()).unwrap_err();
        assert_eq!(err.iterations, 0, "must fail before iterating");
        assert_eq!(err.cause, "non-finite right-hand side");

        b[3] = c64(f64::INFINITY, 0.0);
        let err = bicgstab(&a, &b, &BicgstabOptions::default()).unwrap_err();
        assert_eq!(err.iterations, 0);
    }

    #[test]
    fn bicgstab_nonfinite_matrix_is_breakdown_not_budget_sweep() {
        // A NaN matrix entry poisons the Krylov scalars; the solver must
        // bail on the first poisoned quantity instead of running the full
        // 10k-iteration budget.
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, c64(2.0, 0.0));
        }
        coo.push(0, 1, c64(f64::NAN, 0.0));
        let a = coo.to_csr();
        let b = vec![Complex64::ONE; 4];
        let err = bicgstab(&a, &b, &BicgstabOptions::default()).unwrap_err();
        assert!(err.cause.contains("non-finite"), "cause: {}", err.cause);
        assert!(err.iterations <= 2, "failed only after {}", err.iterations);
    }

    #[test]
    fn csr_linear_op_matches_matvec() {
        use boson_num::krylov::LinearOp;
        let a = laplacian_2d(5, 4);
        let n = a.nrows();
        assert_eq!(LinearOp::dim(&a), n);
        let x: Vec<Complex64> = (0..n).map(|i| c64(i as f64 * 0.3, -0.1)).collect();
        let mut y = vec![Complex64::ZERO; n];
        a.apply(&x, &mut y);
        assert_eq!(y, a.matvec(&x));
        a.apply_transpose(&x, &mut y);
        assert_eq!(y, a.matvec_transpose(&x));
    }

    #[test]
    fn symmetry_detector() {
        let a = laplacian_2d(5, 5);
        assert!(a.asymmetry() < 1e-15);
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, c64(1.0, 0.0));
        coo.push(0, 0, c64(1.0, 0.0));
        coo.push(1, 1, c64(1.0, 0.0));
        assert!(coo.to_csr().asymmetry() > 0.5);
    }

    #[test]
    fn diagonal_extraction() {
        let a = laplacian_2d(3, 3);
        let d = a.diagonal();
        assert_eq!(d.len(), 9);
        assert!(d.iter().all(|v| (*v - c64(4.2, 0.35)).abs() < 1e-15));
    }
}
