//! Matrix-free geometric multigrid preconditioning for the FDFD stencil.
//!
//! Every other solver path in the stack bottoms out on an `O(n·b²)`
//! banded factorisation whose bandwidth `b` grows with the grid width —
//! the banded-LU wall that makes 256×256+ footprints infeasible both for
//! the direct path and for the `BandedLuF32` preconditioner copies. This
//! module replaces the factor with a **geometric multigrid V-cycle**
//! whose setup and per-application cost are `O(n)`:
//!
//! * the fine level is the caller's 5-point stencil (a borrowed
//!   [`FineStencil`] view — no copy of the operator matrix is ever
//!   assembled above the coarsest level);
//! * coarse levels are built by Galerkin projection `A_{ℓ+1} = R·A_ℓ·P`
//!   with full-weighting restriction and bilinear prolongation
//!   (`P = 4·Rᵀ`), which keeps every level complex-symmetric and closes
//!   over 9-point stencils;
//! * smoothing is lexicographic Gauss–Seidel by default (forward sweeps
//!   before the coarse correction, backward after, which keeps the
//!   V-cycle symmetric on the complex-symmetric hierarchy), with damped
//!   Jacobi as an alternative [`Smoother`] — either way nothing is
//!   factored;
//! * only the **coarsest** level (bounded by
//!   [`MultigridOptions::coarse_max_dim`]) is assembled into a
//!   [`BandedMatrix`] and LU-factored, so peak preconditioner memory
//!   stays `O(n)` in the fine-grid unknown count.
//!
//! # Absorbing boundaries: the surrogate + boundary-band split
//!
//! The V-cycle alone cannot precondition the *PML-stretched* Helmholtz
//! operator: Galerkin coarsening through the complex-stretched absorbing
//! rows produces amplifying coarse corrections, and both Jacobi and
//! Gauss–Seidel relaxation diverge on those rows, so no smoothing choice
//! rescues the hierarchy. The production recipe therefore splits the
//! work:
//!
//! * the hierarchy is built from a **hard-walled, complex-shifted
//!   surrogate** of the operator (no PML; an Erlangga-style imaginary
//!   mass shift damps the wave modes enough for coarse corrections to
//!   contract) — it captures the interior physics;
//! * a [`BoundaryBand`] of four thin strips along the domain edges keeps
//!   the **true** PML rows and solves them *exactly* with per-strip
//!   banded factors whose bandwidth is the strip thickness — it removes
//!   the boundary-localised modes the surrogate cannot represent;
//! * [`MgBandPrecond`] composes the two multiplicatively (V-cycle, then
//!   one Schwarz sweep over the strips against the true residual).
//!
//! Neither half converges alone; composed, the outer BiCGSTAB on a
//! 256×256 PML grid converges in a handful of iterations.
//!
//! The hierarchy is immutable between [`Multigrid::rebuild`] calls; the
//! mutable per-application state lives in an external [`MgScratch`] so
//! one scratch can serve many hierarchies of the same grid (the fused
//! (corner × ω) sweep shares a single scratch across all of its per-ω
//! preconditioners). [`MgPrecond`] packages the pair as a
//! [`boson_num::krylov::Precondition`], so `bicgstab_precond_many`,
//! packed sweeps, warm starts and the budget-miss direct fallback all
//! compose unchanged.
//!
//! # Examples
//!
//! One V-cycle as a standalone approximate solve (a shifted 2-D
//! Laplacian; the FDFD Helmholtz operator enters the same way through
//! its stencil arrays):
//!
//! ```
//! use boson_num::{c64, Complex64};
//! use boson_sparse::multigrid::{FineStencil, MgScratch, Multigrid, MultigridOptions};
//!
//! let (nx, ny) = (33, 33);
//! let n = nx * ny;
//! // 5-point Laplacian + small complex shift, boundary couplings zero.
//! let mut west = vec![Complex64::ZERO; n];
//! let mut east = vec![Complex64::ZERO; n];
//! let mut south = vec![Complex64::ZERO; n];
//! let mut north = vec![Complex64::ZERO; n];
//! let diag = vec![c64(4.2, 0.3); n];
//! for j in 0..ny {
//!     for i in 0..nx {
//!         let k = j * nx + i;
//!         if i > 0 {
//!             west[k] = c64(-1.0, 0.0);
//!         }
//!         if i + 1 < nx {
//!             east[k] = c64(-1.0, 0.0);
//!         }
//!         if j > 0 {
//!             south[k] = c64(-1.0, 0.0);
//!         }
//!         if j + 1 < ny {
//!             north[k] = c64(-1.0, 0.0);
//!         }
//!     }
//! }
//! let fine = FineStencil {
//!     nx,
//!     ny,
//!     west: &west,
//!     east: &east,
//!     south: &south,
//!     north: &north,
//!     diag: &diag,
//! };
//! let mut mg = Multigrid::new(MultigridOptions {
//!     coarse_max_dim: 8,
//!     ..MultigridOptions::default()
//! });
//! mg.rebuild(&fine).unwrap();
//!
//! // Apply the preconditioner: b is overwritten with x ≈ A⁻¹ b.
//! let mut scratch = MgScratch::new();
//! let b: Vec<Complex64> = (0..n).map(|k| c64((k as f64 * 0.01).sin(), 0.1)).collect();
//! let mut x = b.clone();
//! mg.precondition(&mut x, 1, &mut scratch);
//!
//! // One V-cycle already removes most of the residual.
//! let mut ax = vec![Complex64::ZERO; n];
//! mg.apply_fine(&x, &mut ax);
//! let norm = |v: &[Complex64]| v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
//! let r: Vec<Complex64> = ax.iter().zip(&b).map(|(p, q)| *q - *p).collect();
//! assert!(norm(&r) < 0.2 * norm(&b));
//! ```

use boson_num::banded::{BandedLu, BandedMatrix, SingularMatrixError};
use boson_num::complex::{vmul, vmul_add};
use boson_num::krylov::Precondition;
use boson_num::Complex64;

/// Relaxation scheme of the V-cycle smoother.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Smoother {
    /// Damped Jacobi — embarrassingly vectorisable, but its iteration
    /// matrix can amplify modes of rows whose complex diagonal is rotated
    /// against the off-diagonal couplings (the PML-stretched boundary
    /// layers of the FDFD operator do exactly that).
    Jacobi,
    /// Gauss–Seidel: lexicographic forward sweeps before the coarse-grid
    /// correction and backward sweeps after it. The sequential updates
    /// stay contractive on the complex-stretched PML rows, and the
    /// forward/backward pairing keeps the V-cycle operator symmetric on
    /// the complex-symmetric Galerkin hierarchy (`Mᵀ = M`), so the
    /// transpose preconditioner application is *exactly* the plain one.
    GaussSeidel,
}

/// Tuning knobs of the [`Multigrid`] hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultigridOptions {
    /// Coarsening stops once both grid dimensions are at most this; the
    /// resulting coarsest operator is the only one that is assembled and
    /// LU-factored. Larger values trade preconditioner-setup time for
    /// stronger coarse corrections (important for the indefinite
    /// Helmholtz operator, where coarse grids under-resolve the wave).
    pub coarse_max_dim: usize,
    /// Smoothing sweeps before the coarse-grid correction.
    pub nu_pre: usize,
    /// Smoothing sweeps after the coarse-grid correction.
    pub nu_post: usize,
    /// Jacobi damping factor (≈ 0.8 for the 5-point stencil); unused by
    /// [`Smoother::GaussSeidel`].
    pub damping: f64,
    /// Relaxation scheme.
    pub smoother: Smoother,
    /// V-cycles per preconditioner application.
    pub cycles: usize,
}

impl Default for MultigridOptions {
    fn default() -> Self {
        Self {
            coarse_max_dim: 64,
            nu_pre: 2,
            nu_post: 2,
            damping: 0.8,
            smoother: Smoother::GaussSeidel,
            cycles: 1,
        }
    }
}

/// Borrowed view of the caller's fine-level 5-point stencil (x-fastest
/// flat ordering, `k = j·nx + i`). Out-of-range couplings — including
/// west/east at row boundaries — must be zero, which is exactly the
/// invariant the FDFD `StencilCache` maintains.
#[derive(Debug, Clone, Copy)]
pub struct FineStencil<'a> {
    /// Grid width (fastest-varying index).
    pub nx: usize,
    /// Grid height.
    pub ny: usize,
    /// Coupling to `k − 1`.
    pub west: &'a [Complex64],
    /// Coupling to `k + 1`.
    pub east: &'a [Complex64],
    /// Coupling to `k − nx`.
    pub south: &'a [Complex64],
    /// Coupling to `k + nx`.
    pub north: &'a [Complex64],
    /// Operator diagonal.
    pub diag: &'a [Complex64],
}

impl FineStencil<'_> {
    /// Unknown count `nx·ny`.
    pub fn n(&self) -> usize {
        self.nx * self.ny
    }

    /// Matrix-free operator application `y = A x` in `O(5n)` via shifted
    /// whole-array products (the zero-boundary-coupling invariant makes
    /// row wrap-around harmless).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with `nx·ny`.
    pub fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        let n = self.n();
        assert_eq!(x.len(), n, "input length mismatch");
        assert_eq!(y.len(), n, "output length mismatch");
        let nx = self.nx;
        vmul(self.diag, x, y);
        vmul_add(&self.west[1..], &x[..n - 1], &mut y[1..]);
        vmul_add(&self.east[..n - 1], &x[1..], &mut y[..n - 1]);
        vmul_add(&self.south[nx..], &x[..n - nx], &mut y[nx..]);
        vmul_add(&self.north[..n - nx], &x[nx..], &mut y[..n - nx]);
    }
}

/// Plane index of stencil offset `(dx, dy)`, `dx, dy ∈ {−1, 0, 1}`:
/// `p = 3(dy+1) + (dx+1)`. Plane 4 is the diagonal.
#[inline]
fn plane(dx: isize, dy: isize) -> usize {
    (3 * (dy + 1) + (dx + 1)) as usize
}

/// Offsets of plane `p` as `(dx, dy)`.
#[inline]
fn plane_offsets(p: usize) -> (isize, isize) {
    ((p % 3) as isize - 1, (p / 3) as isize - 1)
}

/// One grid level: a 9-point stencil stored as 9 coefficient planes
/// (x-fastest, invalid-neighbour entries zero) plus the damped-Jacobi
/// smoother diagonal.
#[derive(Debug, Clone, Default)]
struct Level {
    nx: usize,
    ny: usize,
    /// Stencil planes, indexed by [`plane`].
    c: [Vec<Complex64>; 9],
    /// Planes with at least one nonzero coefficient (the fine 5-point
    /// level leaves its corner planes unused).
    used: [bool; 9],
    /// `1 / diag` per cell (`0` where the diagonal vanishes); empty on
    /// the coarsest level, which solves directly.
    inv_diag: Vec<Complex64>,
}

impl Level {
    fn n(&self) -> usize {
        self.nx * self.ny
    }

    /// `y = A x` via whole-array shifted products per plane — the
    /// zero-boundary-coefficient invariant makes row wrap-around
    /// harmless, exactly like the fine stencil's `apply`.
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        let n = self.n();
        let nx = self.nx as isize;
        vmul(&self.c[4], x, y);
        for p in 0..9 {
            if p == 4 || !self.used[p] {
                continue;
            }
            let (dx, dy) = plane_offsets(p);
            let off = dy * nx + dx;
            if off > 0 {
                let o = off as usize;
                vmul_add(&self.c[p][..n - o], &x[o..], &mut y[..n - o]);
            } else {
                let o = (-off) as usize;
                vmul_add(&self.c[p][o..], &x[..n - o], &mut y[o..]);
            }
        }
    }
}

/// Scratch state of a V-cycle application: per-level iterate, right-hand
/// side and residual buffers, plus two fine-level buffers for multi-cycle
/// accumulation. Sized lazily against the hierarchy it is used with and
/// reused allocation-free afterwards; hierarchies sharing a grid shape
/// (e.g. the per-ω preconditioners of a fused sweep) can share one
/// scratch.
#[derive(Debug, Default)]
pub struct MgScratch {
    x: Vec<Vec<Complex64>>,
    b: Vec<Vec<Complex64>>,
    r: Vec<Vec<Complex64>>,
    acc: Vec<Complex64>,
    tmp: Vec<Complex64>,
}

impl MgScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes every buffer for `mg` (no-op when already sized).
    fn ensure(&mut self, mg: &Multigrid) {
        let depth = mg.levels.len();
        self.x.resize_with(depth, Vec::new);
        self.b.resize_with(depth, Vec::new);
        self.r.resize_with(depth, Vec::new);
        for (lvl, level) in mg.levels.iter().enumerate() {
            self.x[lvl].resize(level.n(), Complex64::ZERO);
            self.b[lvl].resize(level.n(), Complex64::ZERO);
            self.r[lvl].resize(level.n(), Complex64::ZERO);
        }
        let n = mg.levels.first().map_or(0, Level::n);
        self.acc.resize(n, Complex64::ZERO);
        self.tmp.resize(n, Complex64::ZERO);
    }
}

/// A geometric-multigrid V-cycle preconditioner for one `(grid, ω,
/// epoch)` operator (see the [module docs](self)).
///
/// Build once with [`Multigrid::new`], then [`Multigrid::rebuild`] from
/// the current fine stencil whenever the nominal operator changes — the
/// rebuild reuses every allocation, so steady-state epochs are
/// allocation-free. Applications ([`Multigrid::precondition`] /
/// [`Multigrid::vcycle`]) take `&self` plus an external [`MgScratch`].
#[derive(Debug)]
pub struct Multigrid {
    opts: MultigridOptions,
    levels: Vec<Level>,
    /// Banded image of the coarsest level (assembly buffer).
    coarse_mat: BandedMatrix,
    /// The only factorisation in the hierarchy.
    coarse_lu: BandedLu,
    built: bool,
}

impl Multigrid {
    /// An empty hierarchy; build it with [`Multigrid::rebuild`].
    pub fn new(opts: MultigridOptions) -> Self {
        Self {
            opts,
            levels: Vec::new(),
            coarse_mat: BandedMatrix::new(1, 0, 0),
            coarse_lu: BandedLu::placeholder(),
            built: false,
        }
    }

    /// `true` once [`Multigrid::rebuild`] has succeeded.
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Fine-level unknown count.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy has never been rebuilt.
    pub fn dim(&self) -> usize {
        assert!(self.built, "Multigrid::rebuild not called");
        self.levels[0].n()
    }

    /// Number of levels (1 = the fine grid is already at coarse scale and
    /// the "V-cycle" is a plain banded direct solve).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Dimensions `(nx, ny)` of level `lvl` (0 = fine).
    ///
    /// # Panics
    ///
    /// Panics if `lvl` is out of range.
    pub fn level_dims(&self, lvl: usize) -> (usize, usize) {
        (self.levels[lvl].nx, self.levels[lvl].ny)
    }

    /// (Re)builds the hierarchy for `fine`: copies the 5-point stencil
    /// into the fine level, Galerkin-coarsens until both dimensions fit
    /// [`MultigridOptions::coarse_max_dim`], derives the smoother
    /// diagonals, and factors the coarsest operator. All storage is
    /// reused — a same-shape rebuild performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the coarsest operator is
    /// singular.
    ///
    /// # Panics
    ///
    /// Panics if the stencil slices disagree with `nx·ny`.
    pub fn rebuild(&mut self, fine: &FineStencil<'_>) -> Result<(), SingularMatrixError> {
        self.rebuild_from(fine);
        self.finish_build()
    }

    /// The body of [`Multigrid::rebuild`] minus the final coarse factor.
    fn rebuild_from(&mut self, fine: &FineStencil<'_>) {
        let n = fine.nx * fine.ny;
        assert!(fine.nx >= 2 && fine.ny >= 2, "grid too small for multigrid");
        for s in [fine.west, fine.east, fine.south, fine.north, fine.diag] {
            assert_eq!(s.len(), n, "stencil slice length mismatch");
        }
        self.built = false;

        // Depth of the hierarchy (recomputed up front so a same-shape
        // rebuild truncates/extends `levels` identically every epoch).
        let coarse_dim = self.opts.coarse_max_dim.max(2);
        let mut depth = 1;
        let (mut cx, mut cy) = (fine.nx, fine.ny);
        while (cx > coarse_dim || cy > coarse_dim) && cx >= 3 && cy >= 3 {
            cx = cx.div_ceil(2);
            cy = cy.div_ceil(2);
            depth += 1;
        }
        self.levels.resize_with(depth, Level::default);

        // Fine level: the 5-point stencil as 9 planes (corners unused).
        {
            let l0 = &mut self.levels[0];
            l0.nx = fine.nx;
            l0.ny = fine.ny;
            for (p, src) in [
                (plane(0, -1), fine.south),
                (plane(-1, 0), fine.west),
                (plane(0, 0), fine.diag),
                (plane(1, 0), fine.east),
                (plane(0, 1), fine.north),
            ] {
                l0.c[p].clear();
                l0.c[p].extend_from_slice(src);
            }
            for p in [plane(-1, -1), plane(1, -1), plane(-1, 1), plane(1, 1)] {
                l0.c[p].clear();
                l0.c[p].resize(n, Complex64::ZERO);
            }
            l0.used = [false, true, false, true, true, true, false, true, false];
        }

        // Galerkin coarsening.
        for lvl in 1..depth {
            let (head, tail) = self.levels.split_at_mut(lvl);
            galerkin_coarsen(&head[lvl - 1], &mut tail[0]);
        }

        // Smoother diagonals on every level above the coarsest.
        for level in &mut self.levels[..depth - 1] {
            let n_l = level.nx * level.ny;
            level.inv_diag.clear();
            level.inv_diag.extend(level.c[4][..n_l].iter().map(|&d| {
                if d.abs() > 0.0 {
                    d.inv()
                } else {
                    Complex64::ZERO
                }
            }));
        }
        self.levels[depth - 1].inv_diag.clear();
    }

    /// Final build step: assemble and factor the coarsest level — the
    /// only factorisation in the hierarchy, `O(n_c·nx_c²)` ≪ the fine
    /// banded wall.
    fn finish_build(&mut self) -> Result<(), SingularMatrixError> {
        {
            let depth = self.levels.len();
            let coarse = &self.levels[depth - 1];
            let (ncx, ncy) = (coarse.nx, coarse.ny);
            let nc = ncx * ncy;
            let band = ncx + 1;
            if self.coarse_mat.n() == nc && self.coarse_mat.kl() == band {
                self.coarse_mat.reset();
            } else {
                self.coarse_mat.reshape(nc, band, band);
            }
            for p in 0..9 {
                if !coarse.used[p] {
                    continue;
                }
                let (dx, dy) = plane_offsets(p);
                for j in 0..ncy as isize {
                    let (j2, valid_row) = (j + dy, j + dy >= 0 && j + dy < ncy as isize);
                    if !valid_row {
                        continue;
                    }
                    for i in 0..ncx as isize {
                        let i2 = i + dx;
                        if i2 < 0 || i2 >= ncx as isize {
                            continue;
                        }
                        let row = (j * ncx as isize + i) as usize;
                        let v = coarse.c[p][row];
                        if v != Complex64::ZERO {
                            self.coarse_mat
                                .set(row, (j2 * ncx as isize + i2) as usize, v);
                        }
                    }
                }
            }
            self.coarse_mat.factor_into(&mut self.coarse_lu)?;
        }
        self.built = true;
        Ok(())
    }

    /// Fine-level operator application `y = A x` (the Galerkin level-0
    /// stencil — identical to the caller's 5-point operator).
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy is unbuilt or the slice lengths mismatch.
    pub fn apply_fine(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert!(self.built, "Multigrid::rebuild not called");
        assert_eq!(x.len(), self.levels[0].n(), "input length mismatch");
        assert_eq!(y.len(), self.levels[0].n(), "output length mismatch");
        self.levels[0].apply(x, y);
    }

    /// One preconditioner application `x = M⁻¹ b`
    /// ([`MultigridOptions::cycles`] V-cycles, zero initial iterate).
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy is unbuilt or the slice lengths mismatch.
    pub fn vcycle(&self, b: &[Complex64], x: &mut [Complex64], scratch: &mut MgScratch) {
        assert!(self.built, "Multigrid::rebuild not called");
        let n = self.levels[0].n();
        assert_eq!(b.len(), n, "rhs length mismatch");
        assert_eq!(x.len(), n, "solution length mismatch");
        scratch.ensure(self);
        scratch.b[0].copy_from_slice(b);
        self.vcycle_level(0, scratch);
        x.copy_from_slice(&scratch.x[0]);
        for _ in 1..self.opts.cycles {
            // r = b − A x, then one more cycle on the residual equation.
            self.levels[0].apply(x, &mut scratch.tmp);
            for ((dst, &bb), &ax) in scratch.b[0].iter_mut().zip(b).zip(&scratch.tmp) {
                *dst = bb - ax;
            }
            self.vcycle_level(0, scratch);
            for (dst, &dx) in x.iter_mut().zip(&scratch.x[0]) {
                *dst += dx;
            }
        }
    }

    /// In-place block preconditioner application: each of the `nrhs`
    /// column-major columns of `b` is overwritten with `M⁻¹` applied to
    /// it. This is the [`Precondition::solve_block`] work-horse.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy is unbuilt or `b.len() != dim()·nrhs`.
    pub fn precondition(&self, b: &mut [Complex64], nrhs: usize, scratch: &mut MgScratch) {
        assert!(self.built, "Multigrid::rebuild not called");
        let n = self.levels[0].n();
        assert_eq!(b.len(), n * nrhs, "block length mismatch");
        scratch.ensure(self);
        for col in b.chunks_exact_mut(n) {
            // `acc` keeps the original right-hand side so extra cycles can
            // form true residuals while `col` accumulates the iterate.
            scratch.acc.copy_from_slice(col);
            scratch.b[0].copy_from_slice(&scratch.acc);
            self.vcycle_level(0, scratch);
            col.copy_from_slice(&scratch.x[0]);
            for _ in 1..self.opts.cycles {
                self.levels[0].apply(col, &mut scratch.tmp);
                for ((dst, &bb), &ax) in scratch.b[0].iter_mut().zip(&scratch.acc).zip(&scratch.tmp)
                {
                    *dst = bb - ax;
                }
                self.vcycle_level(0, scratch);
                for (dst, &dx) in col.iter_mut().zip(&scratch.x[0]) {
                    *dst += dx;
                }
            }
        }
    }

    /// Recursive V-cycle on `scratch.b[lvl]`, leaving the iterate in
    /// `scratch.x[lvl]`.
    fn vcycle_level(&self, lvl: usize, scratch: &mut MgScratch) {
        let last = self.levels.len() - 1;
        if lvl == last {
            scratch.x[lvl].copy_from_slice(&scratch.b[lvl]);
            self.coarse_lu.solve(&mut scratch.x[lvl]);
            return;
        }
        let level = &self.levels[lvl];
        match self.opts.smoother {
            Smoother::Jacobi => {
                // Pre-smoothing from a zero iterate: the first sweep
                // collapses to x = damping·D⁻¹·b.
                let damping = self.opts.damping;
                vmul(&level.inv_diag, &scratch.b[lvl], &mut scratch.x[lvl]);
                for x in scratch.x[lvl].iter_mut() {
                    *x *= damping;
                }
                for _ in 1..self.opts.nu_pre {
                    smooth_jacobi(
                        level,
                        damping,
                        &mut scratch.x[lvl],
                        &scratch.b[lvl],
                        &mut scratch.r[lvl],
                    );
                }
            }
            Smoother::GaussSeidel => {
                scratch.x[lvl].fill(Complex64::ZERO);
                for _ in 0..self.opts.nu_pre {
                    smooth_gauss_seidel(level, &mut scratch.x[lvl], &scratch.b[lvl], false);
                }
            }
        }
        // Residual, restricted to the next level's right-hand side.
        level.apply(&scratch.x[lvl], &mut scratch.r[lvl]);
        for (r, &bb) in scratch.r[lvl].iter_mut().zip(&scratch.b[lvl]) {
            *r = bb - *r;
        }
        {
            let (head, tail) = scratch.b.split_at_mut(lvl + 1);
            let _ = head;
            restrict(
                level,
                &scratch.r[lvl],
                self.levels[lvl + 1].nx,
                &mut tail[0],
            );
        }
        self.vcycle_level(lvl + 1, scratch);
        {
            let (head, tail) = scratch.x.split_at_mut(lvl + 1);
            prolong_add(&self.levels[lvl + 1], &tail[0], level.nx, &mut head[lvl]);
        }
        match self.opts.smoother {
            Smoother::Jacobi => {
                for _ in 0..self.opts.nu_post {
                    smooth_jacobi(
                        level,
                        self.opts.damping,
                        &mut scratch.x[lvl],
                        &scratch.b[lvl],
                        &mut scratch.r[lvl],
                    );
                }
            }
            // Backward post-sweeps: together with the forward pre-sweeps
            // they keep the V-cycle symmetric on the complex-symmetric
            // hierarchy (the transpose of a forward sweep is a backward
            // sweep).
            Smoother::GaussSeidel => {
                for _ in 0..self.opts.nu_post {
                    smooth_gauss_seidel(level, &mut scratch.x[lvl], &scratch.b[lvl], true);
                }
            }
        }
    }
}

/// One damped-Jacobi sweep `x += damping·D⁻¹·(b − A·x)` (`r` is scratch).
fn smooth_jacobi(
    level: &Level,
    damping: f64,
    x: &mut [Complex64],
    b: &[Complex64],
    r: &mut [Complex64],
) {
    level.apply(x, r);
    for ((x, &bb), (&rr, &w)) in x.iter_mut().zip(b).zip(r.iter().zip(&level.inv_diag)) {
        *x += damping * (w * (bb - rr));
    }
}

/// One lexicographic Gauss–Seidel sweep (forward, or backward when
/// `backward`): `x[k] ← D⁻¹(b[k] − Σ_{p≠4} c_p[k]·x[k+off_p])`, always
/// using the latest neighbour values. Out-of-range neighbours carry zero
/// coefficients (the boundary invariant every Galerkin level preserves),
/// so the explicit range check only guards the slice access.
fn smooth_gauss_seidel(level: &Level, x: &mut [Complex64], b: &[Complex64], backward: bool) {
    let n = level.n() as isize;
    let nx = level.nx as isize;
    let mut offs = [(0isize, 0usize); 8];
    let mut m = 0;
    for p in 0..9 {
        if p == 4 || !level.used[p] {
            continue;
        }
        let (dx, dy) = plane_offsets(p);
        offs[m] = (dy * nx + dx, p);
        m += 1;
    }
    let offs = &offs[..m];
    let mut sweep = |k: isize| {
        let ku = k as usize;
        let mut acc = b[ku];
        for &(off, p) in offs {
            let kk = k + off;
            if kk >= 0 && kk < n {
                acc -= level.c[p][ku] * x[kk as usize];
            }
        }
        x[ku] = acc * level.inv_diag[ku];
    };
    if backward {
        for k in (0..n).rev() {
            sweep(k);
        }
    } else {
        for k in 0..n {
            sweep(k);
        }
    }
}

/// Full-weighting restriction (1-D weights `[¼, ½, ¼]`, boundary terms
/// dropped): `coarse[J·ncx + I] = Σ w(dx)·w(dy)·fine[(2J+dy)·nx + 2I+dx]`.
fn restrict(fine: &Level, r: &[Complex64], ncx: usize, coarse: &mut [Complex64]) {
    let (nx, ny) = (fine.nx as isize, fine.ny as isize);
    let ncy = coarse.len() / ncx;
    let w = |d: isize| if d == 0 { 0.5 } else { 0.25 };
    for cj in 0..ncy as isize {
        for ci in 0..ncx as isize {
            let (fi, fj) = (2 * ci, 2 * cj);
            let mut acc = Complex64::ZERO;
            for dy in -1..=1 {
                let j = fj + dy;
                if j < 0 || j >= ny {
                    continue;
                }
                for dx in -1..=1 {
                    let i = fi + dx;
                    if i < 0 || i >= nx {
                        continue;
                    }
                    acc += (w(dx) * w(dy)) * r[(j * nx + i) as usize];
                }
            }
            coarse[(cj * ncx as isize + ci) as usize] = acc;
        }
    }
}

/// Bilinear prolongation, accumulated: `fine += P·coarse` (1-D weights
/// `[½, 1, ½]`; even fine points inject, odd ones average their two
/// coarse neighbours).
fn prolong_add(coarse_level: &Level, coarse: &[Complex64], nx: usize, fine: &mut [Complex64]) {
    let ncx = coarse_level.nx;
    let ncy = coarse_level.ny;
    let ny = fine.len() / nx;
    for j in 0..ny {
        let (j0, wy0, j1, wy1) = split_weights(j, ncy);
        for i in 0..nx {
            let (i0, wx0, i1, wx1) = split_weights(i, ncx);
            let mut acc = (wx0 * wy0) * coarse[j0 * ncx + i0];
            if let Some(ii) = i1 {
                acc += (wx1 * wy0) * coarse[j0 * ncx + ii];
            }
            if let Some(jj) = j1 {
                acc += (wx0 * wy1) * coarse[jj * ncx + i0];
                if let Some(ii) = i1 {
                    acc += (wx1 * wy1) * coarse[jj * ncx + ii];
                }
            }
            fine[j * nx + i] += acc;
        }
    }
}

/// Coarse neighbours of fine index `i` under bilinear interpolation:
/// `(first, weight, second, weight)` with the second `None` for even `i`
/// or at the high boundary.
#[inline]
fn split_weights(i: usize, nc: usize) -> (usize, f64, Option<usize>, f64) {
    if i.is_multiple_of(2) {
        (i / 2, 1.0, None, 0.0)
    } else {
        let lo = i / 2;
        let hi = lo + 1;
        if hi < nc {
            (lo, 0.5, Some(hi), 0.5)
        } else {
            (lo, 0.5, None, 0.0)
        }
    }
}

/// Galerkin projection `A_coarse = R·A_fine·P` for the vertex-centred
/// coarsening (`ncx = ⌈nx/2⌉`): full-weighting `R`, bilinear `P = 4Rᵀ`.
/// A 9-point fine stencil closes to a 9-point coarse stencil.
fn galerkin_coarsen(fine: &Level, coarse: &mut Level) {
    let (nx, ny) = (fine.nx as isize, fine.ny as isize);
    let ncx = fine.nx.div_ceil(2);
    let ncy = fine.ny.div_ceil(2);
    let nc = ncx * ncy;
    coarse.nx = ncx;
    coarse.ny = ncy;
    for plane in &mut coarse.c {
        plane.clear();
        plane.resize(nc, Complex64::ZERO);
    }
    let wr = |d: isize| if d == 0 { 0.5 } else { 0.25 };
    for cj in 0..ncy as isize {
        for ci in 0..ncx as isize {
            let row = (cj * ncx as isize + ci) as usize;
            // Fine points in this coarse row's restriction footprint.
            for rdy in -1..=1 {
                let j = 2 * cj + rdy;
                if j < 0 || j >= ny {
                    continue;
                }
                for rdx in -1..=1 {
                    let i = 2 * ci + rdx;
                    if i < 0 || i >= nx {
                        continue;
                    }
                    let rw = wr(rdx) * wr(rdy);
                    let k = (j * nx + i) as usize;
                    // Fine stencil entries out of this fine point.
                    for p in 0..9 {
                        if !fine.used[p] {
                            continue;
                        }
                        let a = fine.c[p][k];
                        if a == Complex64::ZERO {
                            continue;
                        }
                        let (sdx, sdy) = plane_offsets(p);
                        let (i2, j2) = (i + sdx, j + sdy);
                        if i2 < 0 || i2 >= nx || j2 < 0 || j2 >= ny {
                            continue;
                        }
                        // Prolongation weights of the target fine point.
                        let (ia, wxa, ib, wxb) = split_weights(i2 as usize, ncx);
                        let (ja, wya, jb, wyb) = split_weights(j2 as usize, ncy);
                        let mut scatter = |ic: usize, jc: usize, wp: f64| {
                            let (ddx, ddy) = (ic as isize - ci, jc as isize - cj);
                            debug_assert!(ddx.abs() <= 1 && ddy.abs() <= 1);
                            coarse.c[plane(ddx, ddy)][row] += (rw * wp) * a;
                        };
                        scatter(ia, ja, wxa * wya);
                        if let Some(ii) = ib {
                            scatter(ii, ja, wxb * wya);
                        }
                        if let Some(jj) = jb {
                            scatter(ia, jj, wxa * wyb);
                            if let Some(ii) = ib {
                                scatter(ii, jj, wxb * wyb);
                            }
                        }
                    }
                }
            }
        }
    }
    for p in 0..9 {
        coarse.used[p] = coarse.c[p].iter().any(|v| *v != Complex64::ZERO);
    }
}

/// One rectangular boundary strip: the principal submatrix of the fine
/// operator over `[x0, x1) × [y0, y1)`, ordered depth-minor so its
/// bandwidth is the strip thickness, LU-factored.
#[derive(Debug)]
struct Strip {
    rect: (usize, usize, usize, usize),
    /// `true` for the horizontal (bottom/top) strips, whose minor index
    /// runs along `y`; the vertical strips run their minor index along
    /// `x`. Either way the banded width is the strip's thin dimension.
    minor_is_y: bool,
    /// Global cell index per strip-local index.
    cells: Vec<usize>,
    mat: BandedMatrix,
    lu: BandedLu,
}

impl Strip {
    fn empty() -> Self {
        Self {
            rect: (0, 0, 0, 0),
            minor_is_y: false,
            cells: Vec::new(),
            mat: BandedMatrix::new(1, 0, 0),
            lu: BandedLu::placeholder(),
        }
    }
}

/// Exact solves of the **true** operator restricted to four thin strips
/// along the domain edges, applied as one multiplicative Schwarz sweep —
/// the boundary-band companion of the interior V-cycle.
///
/// The multigrid hierarchy is built from a hard-walled, shift-damped
/// *surrogate* of the PML-stretched Helmholtz operator (Galerkin
/// coarsening through the complex-stretched absorbing layers produces
/// amplifying coarse corrections, and both Jacobi and Gauss–Seidel
/// relaxation diverge on the stretched rows — no smoothing-based cure
/// exists there). That leaves a residual cluster of boundary-localised
/// error modes the surrogate can never represent, which stall the outer
/// Krylov iteration. This correction removes them *exactly*: each strip
/// covers the absorbing layer plus an overlap margin, its sub-operator
/// keeps the true PML rows (a direct banded factor has no
/// relaxation-stability constraint), and its bandwidth is the strip
/// thickness — so factor cost and memory stay `O(n_band·depth²)`, far
/// below the `O(n·nx²)` banded-LU wall.
#[derive(Debug)]
pub struct BoundaryBand {
    nx: usize,
    ny: usize,
    strips: [Strip; 4],
    built: bool,
}

impl Default for BoundaryBand {
    fn default() -> Self {
        Self::new()
    }
}

impl BoundaryBand {
    /// An empty band; build it with [`BoundaryBand::rebuild`].
    pub fn new() -> Self {
        Self {
            nx: 0,
            ny: 0,
            strips: [
                Strip::empty(),
                Strip::empty(),
                Strip::empty(),
                Strip::empty(),
            ],
            built: false,
        }
    }

    /// `true` once [`BoundaryBand::rebuild`] has succeeded.
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// (Re)assembles and factors the four strips for `fine`, each
    /// `depth` cells thick (clamped to the half-domain). All storage is
    /// reused — a same-shape rebuild performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a strip sub-operator is
    /// singular.
    ///
    /// # Panics
    ///
    /// Panics if the stencil slices disagree with `nx·ny`.
    pub fn rebuild(
        &mut self,
        fine: &FineStencil<'_>,
        depth: usize,
    ) -> Result<(), SingularMatrixError> {
        let (nx, ny) = (fine.nx, fine.ny);
        let n = nx * ny;
        for s in [fine.west, fine.east, fine.south, fine.north, fine.diag] {
            assert_eq!(s.len(), n, "stencil slice length mismatch");
        }
        self.built = false;
        self.nx = nx;
        self.ny = ny;
        let d = depth.clamp(1, (nx / 2).min(ny / 2).max(1));
        let rects = [
            ((0, nx, 0, d), true),
            ((0, nx, ny - d, ny), true),
            ((0, d, 0, ny), false),
            ((nx - d, nx, 0, ny), false),
        ];
        for (strip, (rect, minor_is_y)) in self.strips.iter_mut().zip(rects) {
            let (x0, x1, y0, y1) = rect;
            let (w, h) = (x1 - x0, y1 - y0);
            let band = if minor_is_y { h } else { w };
            let nl = w * h;
            let lidx = |x: usize, y: usize| {
                if minor_is_y {
                    (x - x0) * h + (y - y0)
                } else {
                    (y - y0) * w + (x - x0)
                }
            };
            if strip.rect != rect || strip.minor_is_y != minor_is_y {
                strip.rect = rect;
                strip.minor_is_y = minor_is_y;
                strip.cells.clear();
                strip.cells.resize(nl, 0);
                for y in y0..y1 {
                    for x in x0..x1 {
                        strip.cells[lidx(x, y)] = y * nx + x;
                    }
                }
            }
            if strip.mat.n() == nl && strip.mat.kl() == band {
                strip.mat.reset();
            } else {
                strip.mat.reshape(nl, band, band);
            }
            for y in y0..y1 {
                for x in x0..x1 {
                    let l = lidx(x, y);
                    let k = y * nx + x;
                    strip.mat.set(l, l, fine.diag[k]);
                    if x > x0 {
                        strip.mat.set(l, lidx(x - 1, y), fine.west[k]);
                    }
                    if x + 1 < x1 {
                        strip.mat.set(l, lidx(x + 1, y), fine.east[k]);
                    }
                    if y > y0 {
                        strip.mat.set(l, lidx(x, y - 1), fine.south[k]);
                    }
                    if y + 1 < y1 {
                        strip.mat.set(l, lidx(x, y + 1), fine.north[k]);
                    }
                }
            }
            strip.mat.factor_into(&mut strip.lu)?;
        }
        self.built = true;
        Ok(())
    }

    /// One multiplicative Schwarz sweep: `scratch.r` holds the current
    /// residual `b − A·x` on entry; each strip's exact correction is
    /// added to `x` in turn with the residual kept consistent between
    /// strips.
    ///
    /// # Panics
    ///
    /// Panics if the band is unbuilt or `x` disagrees with the grid.
    pub fn correct(&self, fine: &FineStencil<'_>, x: &mut [Complex64], scratch: &mut BandScratch) {
        assert!(self.built, "BoundaryBand::rebuild not called");
        let n = self.nx * self.ny;
        assert_eq!(x.len(), n, "iterate length mismatch");
        assert_eq!(scratch.r.len(), n, "residual length mismatch");
        scratch.t.resize(n, Complex64::ZERO);
        scratch.t2.resize(n, Complex64::ZERO);
        scratch.t.fill(Complex64::ZERO);
        for strip in &self.strips {
            let nl = strip.cells.len();
            scratch.sb.clear();
            scratch.sb.extend(strip.cells.iter().map(|&k| scratch.r[k]));
            strip.lu.solve(&mut scratch.sb[..nl]);
            for (l, &k) in strip.cells.iter().enumerate() {
                scratch.t[k] = scratch.sb[l];
                x[k] += scratch.sb[l];
            }
            fine.apply(&scratch.t, &mut scratch.t2);
            for (r, &t) in scratch.r.iter_mut().zip(&scratch.t2) {
                *r -= t;
            }
            // Re-zero only the strip's own cells for the next scatter.
            for &k in &strip.cells {
                scratch.t[k] = Complex64::ZERO;
            }
        }
    }
}

/// Scratch state of a boundary-band application: the running residual,
/// two fine-level buffers for the strip scatter / operator product, and
/// the strip gather buffer. Sized lazily and reused allocation-free.
#[derive(Debug, Default)]
pub struct BandScratch {
    /// Running residual `b − A·x` across the sweep.
    r: Vec<Complex64>,
    t: Vec<Complex64>,
    t2: Vec<Complex64>,
    sb: Vec<Complex64>,
}

impl BandScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The production preconditioner for the PML-stretched Helmholtz
/// operator: a surrogate-hierarchy V-cycle for the interior composed
/// multiplicatively with the exact [`BoundaryBand`] correction,
/// `x = V(b)`, then `x += Schwarz(b − A·x)` against the **true** fine
/// operator. Usable wherever the Krylov machinery expects a
/// [`Precondition`] (and, through the blanket implementation, a
/// `PrecondFamily` for packed sweeps).
///
/// Neither half alone converges on large absorbing-boundary grids: the
/// V-cycle's hard-walled surrogate stalls on boundary-localised modes,
/// and the strips alone have no interior coverage. Composed, the outer
/// BiCGSTAB converges in a few iterations (see `crates/bench`'s
/// `large_grid_256`).
///
/// The transpose application reuses the plain one, exactly like
/// [`MgPrecond`]: every ingredient approximates the same
/// complex-symmetric `A⁻¹`, and preconditioner quality — not elementwise
/// transposition — is what convergence (judged on true residuals)
/// depends on.
#[derive(Debug)]
pub struct MgBandPrecond<'a> {
    /// The interior hierarchy (built from the hard-walled surrogate).
    pub mg: &'a Multigrid,
    /// The boundary strips (built from the true operator).
    pub band: &'a BoundaryBand,
    /// The true fine operator, for the intermediate residual.
    pub fine: FineStencil<'a>,
    /// V-cycle scratch (shareable across same-shape hierarchies).
    pub mg_scratch: &'a mut MgScratch,
    /// Band-sweep scratch (shareable across same-shape bands).
    pub band_scratch: &'a mut BandScratch,
}

impl Precondition for MgBandPrecond<'_> {
    fn dim(&self) -> usize {
        self.mg.dim()
    }

    fn solve_block(&mut self, b: &mut [Complex64], nrhs: usize) {
        let n = self.mg.dim();
        assert_eq!(b.len(), n * nrhs, "block length mismatch");
        let fine = self.fine;
        for col in b.chunks_exact_mut(n) {
            self.band_scratch.r.resize(n, Complex64::ZERO);
            self.band_scratch.t.resize(n, Complex64::ZERO);
            self.band_scratch.r.copy_from_slice(col);
            self.mg.precondition(col, 1, self.mg_scratch);
            fine.apply(col, &mut self.band_scratch.t);
            for (r, &ax) in self.band_scratch.r.iter_mut().zip(&self.band_scratch.t) {
                *r -= ax;
            }
            self.band.correct(&fine, col, self.band_scratch);
        }
    }

    fn solve_block_transpose(&mut self, b: &mut [Complex64], nrhs: usize) {
        self.solve_block(b, nrhs);
    }
}

/// A [`Multigrid`] paired with its scratch, usable wherever the Krylov
/// machinery expects a [`Precondition`] (and, through the blanket
/// implementation, a `PrecondFamily` for packed sweeps).
///
/// The transpose application reuses the plain V-cycle: every Galerkin
/// level is complex-symmetric (`A_ℓᵀ = A_ℓ`, inherited from the
/// symmetrised FDFD operator through `P = 4Rᵀ`), so the plain cycle is an
/// equally good approximation of `A⁻ᵀ = A⁻¹` — preconditioner quality,
/// not elementwise transposition, is what convergence (judged on true
/// residuals) depends on.
#[derive(Debug)]
pub struct MgPrecond<'a> {
    /// The hierarchy (immutable during solves).
    pub mg: &'a Multigrid,
    /// Per-application scratch (shareable across same-shape hierarchies).
    pub scratch: &'a mut MgScratch,
}

impl Precondition for MgPrecond<'_> {
    fn dim(&self) -> usize {
        self.mg.dim()
    }

    fn solve_block(&mut self, b: &mut [Complex64], nrhs: usize) {
        self.mg.precondition(b, nrhs, self.scratch);
    }

    fn solve_block_transpose(&mut self, b: &mut [Complex64], nrhs: usize) {
        self.mg.precondition(b, nrhs, self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boson_num::c64;

    /// Owned 5-point stencil with zeroed boundary couplings.
    struct Stencil5 {
        nx: usize,
        ny: usize,
        west: Vec<Complex64>,
        east: Vec<Complex64>,
        south: Vec<Complex64>,
        north: Vec<Complex64>,
        diag: Vec<Complex64>,
    }

    impl Stencil5 {
        /// Shifted 2-D Laplacian (complex shift keeps it invertible and
        /// mildly non-Hermitian, like the PML-stretched FDFD operator).
        fn laplacian(nx: usize, ny: usize, shift: Complex64) -> Self {
            let n = nx * ny;
            let mut s = Self {
                nx,
                ny,
                west: vec![Complex64::ZERO; n],
                east: vec![Complex64::ZERO; n],
                south: vec![Complex64::ZERO; n],
                north: vec![Complex64::ZERO; n],
                diag: vec![shift; n],
            };
            for j in 0..ny {
                for i in 0..nx {
                    let k = j * nx + i;
                    if i > 0 {
                        s.west[k] = c64(-1.0, 0.0);
                    }
                    if i + 1 < nx {
                        s.east[k] = c64(-1.0, 0.0);
                    }
                    if j > 0 {
                        s.south[k] = c64(-1.0, 0.0);
                    }
                    if j + 1 < ny {
                        s.north[k] = c64(-1.0, 0.0);
                    }
                }
            }
            s
        }

        fn view(&self) -> FineStencil<'_> {
            FineStencil {
                nx: self.nx,
                ny: self.ny,
                west: &self.west,
                east: &self.east,
                south: &self.south,
                north: &self.north,
                diag: &self.diag,
            }
        }
    }

    fn norm(v: &[Complex64]) -> f64 {
        v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    fn rhs(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|k| c64((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
            .collect()
    }

    fn build(nx: usize, ny: usize, coarse_max_dim: usize) -> (Stencil5, Multigrid) {
        let s = Stencil5::laplacian(nx, ny, c64(4.2, 0.35));
        let mut mg = Multigrid::new(MultigridOptions {
            coarse_max_dim,
            ..MultigridOptions::default()
        });
        mg.rebuild(&s.view()).unwrap();
        (s, mg)
    }

    #[test]
    fn hierarchy_dims_follow_vertex_centred_coarsening() {
        let (_, mg) = build(65, 33, 8);
        let dims: Vec<(usize, usize)> = (0..mg.depth()).map(|l| mg.level_dims(l)).collect();
        assert_eq!(dims, vec![(65, 33), (33, 17), (17, 9), (9, 5), (5, 3)]);
        assert_eq!(mg.dim(), 65 * 33);
    }

    #[test]
    fn small_grid_collapses_to_direct_solve() {
        // Fine grid already below the coarse threshold: single level, the
        // "V-cycle" is the exact banded solve.
        let (s, mg) = build(6, 5, 64);
        assert_eq!(mg.depth(), 1);
        let n = 30;
        let b = rhs(n);
        let mut x = b.clone();
        mg.precondition(&mut x, 1, &mut MgScratch::new());
        let mut ax = vec![Complex64::ZERO; n];
        mg.apply_fine(&x, &mut ax);
        let r: Vec<Complex64> = ax.iter().zip(&b).map(|(p, q)| *q - *p).collect();
        assert!(norm(&r) < 1e-10 * norm(&b), "direct level must be exact");
        drop(s);
    }

    #[test]
    fn galerkin_levels_stay_complex_symmetric() {
        let (_, mg) = build(33, 29, 4);
        assert!(mg.depth() >= 3);
        for level in &mg.levels {
            let (nx, ny) = (level.nx as isize, level.ny as isize);
            for p in 0..9 {
                if !level.used[p] {
                    continue;
                }
                let (dx, dy) = plane_offsets(p);
                for j in 0..ny {
                    for i in 0..nx {
                        let (i2, j2) = (i + dx, j + dy);
                        if i2 < 0 || i2 >= nx || j2 < 0 || j2 >= ny {
                            continue;
                        }
                        let a = level.c[p][(j * nx + i) as usize];
                        let b = level.c[8 - p][(j2 * nx + i2) as usize];
                        assert!(
                            (a - b).abs() <= 1e-12 * (1.0 + a.abs()),
                            "A[{i},{j}]->({i2},{j2}) = {a:?} but transpose entry {b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn restriction_prolongation_adjoint_scaling() {
        // P = 4·Rᵀ for the full-weighting / bilinear pair:
        // ⟨R f, c⟩ = ¼·⟨f, P c⟩ for all f, c (real weights, so the plain
        // bilinear form works).
        let (_, mg) = build(9, 7, 4);
        let fine_level = &mg.levels[0];
        let (ncx, ncy) = mg.level_dims(1);
        let nf = fine_level.n();
        let nc = ncx * ncy;
        let f = rhs(nf);
        let c: Vec<Complex64> = (0..nc).map(|k| c64(0.3 * k as f64, -0.2)).collect();
        let mut rf = vec![Complex64::ZERO; nc];
        restrict(fine_level, &f, ncx, &mut rf);
        let mut pc = vec![Complex64::ZERO; nf];
        prolong_add(&mg.levels[1], &c, fine_level.nx, &mut pc);
        let lhs: Complex64 = rf.iter().zip(&c).map(|(a, b)| *a * *b).sum();
        let rhs_: Complex64 = f.iter().zip(&pc).map(|(a, b)| *a * *b).sum();
        assert!(
            (lhs - 0.25 * rhs_).abs() < 1e-12 * (1.0 + lhs.abs()),
            "⟨Rf,c⟩ = {lhs:?} vs ¼⟨f,Pc⟩ = {:?}",
            0.25 * rhs_
        );
    }

    /// Release-mode CI smoke test: a handful of V-cycle-preconditioned
    /// Richardson iterations must converge fast on a multi-level
    /// hierarchy.
    #[test]
    fn vcycle_convergence_smoke() {
        let (_, mg) = build(33, 33, 8);
        assert!(mg.depth() >= 3, "smoke test must exercise real coarsening");
        let n = mg.dim();
        let b = rhs(n);
        let mut scratch = MgScratch::new();
        let mut x = vec![Complex64::ZERO; n];
        let mut r = b.clone();
        let mut dx = vec![Complex64::ZERO; n];
        let mut ax = vec![Complex64::ZERO; n];
        let b0 = norm(&b);
        let mut prev = b0;
        for _ in 0..8 {
            mg.vcycle(&r, &mut dx, &mut scratch);
            for (xi, &d) in x.iter_mut().zip(&dx) {
                *xi += d;
            }
            mg.apply_fine(&x, &mut ax);
            for ((ri, &bb), &aa) in r.iter_mut().zip(&b).zip(&ax) {
                *ri = bb - aa;
            }
            let rn = norm(&r);
            assert!(rn < 0.6 * prev, "cycle stalled: {rn:.3e} after {prev:.3e}");
            prev = rn;
        }
        assert!(prev < 1e-6 * b0, "relative residual {:.3e}", prev / b0);
    }

    #[test]
    fn precondition_block_matches_single_columns() {
        let (_, mg) = build(17, 13, 4);
        let n = mg.dim();
        let mut scratch = MgScratch::new();
        let mut block: Vec<Complex64> = rhs(2 * n);
        let cols: Vec<Vec<Complex64>> = block.chunks(n).map(<[Complex64]>::to_vec).collect();
        mg.precondition(&mut block, 2, &mut scratch);
        for (c, col) in cols.iter().enumerate() {
            let mut single = vec![Complex64::ZERO; n];
            mg.vcycle(col, &mut single, &mut scratch);
            assert_eq!(&block[c * n..(c + 1) * n], &single[..], "column {c}");
        }
    }

    #[test]
    fn rebuild_is_deterministic_and_reusable() {
        let s = Stencil5::laplacian(21, 19, c64(4.0, 0.25));
        let mut mg = Multigrid::new(MultigridOptions {
            coarse_max_dim: 6,
            ..MultigridOptions::default()
        });
        mg.rebuild(&s.view()).unwrap();
        let n = mg.dim();
        let b = rhs(n);
        let mut x1 = b.clone();
        mg.precondition(&mut x1, 1, &mut MgScratch::new());
        // Rebuild from a perturbed operator, then back: identical result.
        let s2 = Stencil5::laplacian(21, 19, c64(5.5, 0.1));
        mg.rebuild(&s2.view()).unwrap();
        mg.rebuild(&s.view()).unwrap();
        let mut x2 = b.clone();
        mg.precondition(&mut x2, 1, &mut MgScratch::new());
        assert_eq!(x1, x2);
    }

    #[test]
    fn extra_cycles_tighten_the_solve() {
        let s = Stencil5::laplacian(25, 25, c64(4.2, 0.35));
        let solve_res = |cycles: usize| {
            let mut mg = Multigrid::new(MultigridOptions {
                coarse_max_dim: 6,
                cycles,
                ..MultigridOptions::default()
            });
            mg.rebuild(&s.view()).unwrap();
            let n = mg.dim();
            let b = rhs(n);
            let mut x = b.clone();
            mg.precondition(&mut x, 1, &mut MgScratch::new());
            let mut ax = vec![Complex64::ZERO; n];
            mg.apply_fine(&x, &mut ax);
            let r: Vec<Complex64> = ax.iter().zip(&b).map(|(p, q)| *q - *p).collect();
            norm(&r) / norm(&b)
        };
        let one = solve_res(1);
        let three = solve_res(3);
        assert!(
            three < 0.2 * one,
            "1 cycle: {one:.3e}, 3 cycles: {three:.3e}"
        );
    }

    #[test]
    fn boundary_band_zeroes_strip_local_residual() {
        // A residual supported in the middle of the bottom strip is
        // removed *exactly* by that strip's solve: the correction t
        // satisfies (A t)|_strip = r|_strip with t zero outside, so the
        // updated residual vanishes on every strip cell. Each later
        // strip's own correction leaves a one-cell ring just outside its
        // rectangle (for the left/right strips, the columns x = d and
        // x = nx−1−d, which cut back through the bottom strip), so those
        // two columns are excluded from the exactness check. (The moved
        // residual lands on interior ring cells — the sweep *relocates*
        // boundary error to where the V-cycle is competent, it is not by
        // itself a norm reducer.)
        let (nx, ny, d) = (32, 24, 4);
        let s = Stencil5::laplacian(nx, ny, c64(4.2, 0.35));
        let fine = s.view();
        let mut band = BoundaryBand::new();
        band.rebuild(&fine, d).unwrap();
        assert!(band.is_built());
        let n = fine.n();
        let mut b = vec![Complex64::ZERO; n];
        for y in 0..d {
            for x in 12..20 {
                b[y * nx + x] = c64(1.0 + x as f64 * 0.1, y as f64 * 0.3 - 0.2);
            }
        }
        let mut x = vec![Complex64::ZERO; n];
        let mut scratch = BandScratch::new();
        scratch.r.resize(n, Complex64::ZERO);
        scratch.r.copy_from_slice(&b);
        band.correct(&fine, &mut x, &mut scratch);
        let mut ax = vec![Complex64::ZERO; n];
        fine.apply(&x, &mut ax);
        let bnorm = norm(&b);
        for y in 0..ny {
            for i in 0..nx {
                let k = y * nx + i;
                let r = b[k] - ax[k];
                let in_band = y < d || y >= ny - d || i < d || i >= nx - d;
                if in_band && i != d && i != nx - 1 - d {
                    assert!(
                        r.abs() <= 1e-12 * bnorm,
                        "({i},{y}): residual {r:?} left inside the band"
                    );
                }
                // The sweep keeps its running residual consistent.
                assert!(
                    (scratch.r[k] - r).abs() <= 1e-12 * bnorm,
                    "({i},{y}): stale running residual"
                );
            }
        }
    }

    #[test]
    fn boundary_band_rebuild_is_deterministic_and_reusable() {
        let s = Stencil5::laplacian(21, 19, c64(4.0, 0.25));
        let fine = s.view();
        let apply = |band: &BoundaryBand| {
            let n = fine.n();
            let mut x = vec![Complex64::ZERO; n];
            let mut scratch = BandScratch::new();
            scratch.r.resize(n, Complex64::ZERO);
            scratch.r.copy_from_slice(&rhs(n));
            band.correct(&fine, &mut x, &mut scratch);
            x
        };
        let mut band = BoundaryBand::new();
        band.rebuild(&fine, 3).unwrap();
        let x1 = apply(&band);
        // Rebuild from a perturbed operator, then back: identical result.
        let s2 = Stencil5::laplacian(21, 19, c64(5.5, 0.1));
        band.rebuild(&s2.view(), 3).unwrap();
        band.rebuild(&fine, 3).unwrap();
        let x2 = apply(&band);
        assert_eq!(x1, x2);
    }

    /// Release-mode CI smoke test of the production composition
    /// ([`MgBandPrecond`]): the V-cycle + boundary-band preconditioned
    /// Richardson iteration must contract every step, and the transpose
    /// application must equal the plain one (complex symmetry).
    #[test]
    fn mg_band_composition_richardson_smoke() {
        let s = Stencil5::laplacian(33, 33, c64(4.2, 0.35));
        let fine = s.view();
        let mut mg = Multigrid::new(MultigridOptions {
            coarse_max_dim: 8,
            ..MultigridOptions::default()
        });
        mg.rebuild(&fine).unwrap();
        let mut band = BoundaryBand::new();
        band.rebuild(&fine, 5).unwrap();
        let n = fine.n();
        let b = rhs(n);
        let mut mg_scratch = MgScratch::new();
        let mut band_scratch = BandScratch::new();
        let mut p1 = b.clone();
        MgBandPrecond {
            mg: &mg,
            band: &band,
            fine,
            mg_scratch: &mut mg_scratch,
            band_scratch: &mut band_scratch,
        }
        .solve_block(&mut p1, 1);
        let mut p2 = b.clone();
        MgBandPrecond {
            mg: &mg,
            band: &band,
            fine,
            mg_scratch: &mut mg_scratch,
            band_scratch: &mut band_scratch,
        }
        .solve_block_transpose(&mut p2, 1);
        assert_eq!(p1, p2, "transpose application must equal the plain one");

        let mut x = vec![Complex64::ZERO; n];
        let mut r = b.clone();
        let mut dx = vec![Complex64::ZERO; n];
        let mut ax = vec![Complex64::ZERO; n];
        let b0 = norm(&b);
        let mut prev = b0;
        for _ in 0..8 {
            dx.copy_from_slice(&r);
            MgBandPrecond {
                mg: &mg,
                band: &band,
                fine,
                mg_scratch: &mut mg_scratch,
                band_scratch: &mut band_scratch,
            }
            .solve_block(&mut dx, 1);
            for (xi, &d) in x.iter_mut().zip(&dx) {
                *xi += d;
            }
            fine.apply(&x, &mut ax);
            for ((ri, &bb), &aa) in r.iter_mut().zip(&b).zip(&ax) {
                *ri = bb - aa;
            }
            let rn = norm(&r);
            assert!(
                rn < 0.7 * prev,
                "composition stalled: {rn:.3e} after {prev:.3e}"
            );
            prev = rn;
        }
        assert!(prev < 1e-6 * b0, "relative residual {:.3e}", prev / b0);
    }
}
