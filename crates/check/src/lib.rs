//! `boson_check` — a loom-lite model checker for the parallel substrate.
//!
//! The build environment is stable-toolchain and offline (no Miri, no
//! TSan, no crates.io `loom`), so this crate supplies the minimum
//! machinery needed to *exhaustively* test `boson_num::pool`'s
//! mutex/condvar hand-off protocol: [`shim`] sync primitives that mirror
//! the `std::sync` API, and a deterministic [`sched`] scheduler that
//! drives bounded-DFS exploration of every thread interleaving (with a
//! CHESS-style preemption bound to keep the tree exhaustible).
//!
//! Two ways in:
//!
//! * [`explore`] / [`explore_random`] run a closure under the scheduler
//!   directly — any code written against the shims can be checked;
//! * the `model-check` cargo feature of `boson-num` reroutes the pool's
//!   `sync` facade onto [`shim`], so the harness tests in this crate
//!   explore the *actual* dispatch protocol, not a transcription of it.
//!
//! ```
//! use boson_check::{explore, Config};
//! use boson_check::shim::{spawn_join, AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let report = explore(&Config::default(), || {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let m = Arc::clone(&n);
//!     let t = spawn_join(move || {
//!         // Relaxed: single counter, assertion only needs the final
//!         // value after join.
//!         m.fetch_add(1, Ordering::Relaxed)
//!     });
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join();
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! assert!(report.exhausted && report.violation.is_none());
//! ```

pub mod sched;
pub mod shim;

pub use sched::{explore, explore_random, Config, Report, Violation};

#[cfg(test)]
mod tests {
    use super::shim::{spawn_join, AtomicUsize, Condvar, Mutex, Ordering};
    use super::{explore, explore_random, Config, Violation};
    use std::sync::Arc;

    fn small() -> Config {
        Config {
            max_executions: 200_000,
            max_preemptions: 3,
            max_steps: 10_000,
        }
    }

    #[test]
    fn single_thread_body_is_one_execution() {
        let report = explore(&small(), || {
            let x = AtomicUsize::new(1);
            x.fetch_add(1, Ordering::SeqCst);
            assert_eq!(x.load(Ordering::SeqCst), 2);
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.exhausted);
        assert_eq!(report.executions, 1);
    }

    #[test]
    fn counter_without_rmw_races() {
        // Two increments via load+store: the classic lost update. The
        // checker must find the interleaving where one update vanishes.
        let report = explore(&small(), || {
            let n = Arc::new(AtomicUsize::new(0));
            let m = Arc::clone(&n);
            let t = spawn_join(move || {
                let v = m.load(Ordering::SeqCst);
                m.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
        match report.violation {
            Some(Violation::Panic(ref msg)) => assert!(msg.contains("lost update"), "{msg}"),
            ref other => panic!("expected the lost update to be found, got {other:?}"),
        }
    }

    #[test]
    fn counter_with_rmw_is_clean() {
        let report = explore(&small(), || {
            let n = Arc::new(AtomicUsize::new(0));
            let m = Arc::clone(&n);
            let t = spawn_join(move || {
                m.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join();
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.exhausted);
        assert!(report.executions > 1, "expected several interleavings");
    }

    #[test]
    fn mutex_serialises_critical_sections() {
        let report = explore(&small(), || {
            let m = Arc::new(Mutex::new((0usize, false)));
            let m2 = Arc::clone(&m);
            let t = spawn_join(move || {
                let mut g = m2.lock().unwrap_or_else(|e| e.into_inner());
                assert!(!g.1, "critical section aliased");
                g.1 = true;
                g.0 += 1;
                g.1 = false;
            });
            {
                let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                assert!(!g.1, "critical section aliased");
                g.1 = true;
                g.0 += 1;
                g.1 = false;
            }
            t.join();
            assert_eq!(m.lock().unwrap_or_else(|e| e.into_inner()).0, 2);
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.exhausted);
    }

    #[test]
    fn lock_order_inversion_deadlocks() {
        let report = explore(&small(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = spawn_join(move || {
                let _gb = b2.lock().unwrap_or_else(|e| e.into_inner());
                let _ga = a2.lock().unwrap_or_else(|e| e.into_inner());
            });
            let _ga = a.lock().unwrap_or_else(|e| e.into_inner());
            let _gb = b.lock().unwrap_or_else(|e| e.into_inner());
            drop((_ga, _gb));
            t.join();
        });
        assert!(
            matches!(report.violation, Some(Violation::Deadlock(_))),
            "expected the AB/BA deadlock, got {:?}",
            report.violation
        );
    }

    #[test]
    fn condvar_handshake_is_clean() {
        let report = explore(&small(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = spawn_join(move || {
                let (m, cv) = &*p2;
                let mut ready = m.lock().unwrap_or_else(|e| e.into_inner());
                *ready = true;
                cv.notify_one();
                drop(ready);
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock().unwrap_or_else(|e| e.into_inner());
            while !*ready {
                ready = cv.wait(ready).unwrap_or_else(|e| e.into_inner());
            }
            drop(ready);
            t.join();
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.exhausted);
    }

    #[test]
    fn dropped_notify_is_a_detected_deadlock() {
        // Signaller sets the flag but never notifies: the waiter parks
        // forever (no spurious wakeups in the model — that is the point).
        let report = explore(&small(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = spawn_join(move || {
                let (m, _cv) = &*p2;
                *m.lock().unwrap_or_else(|e| e.into_inner()) = true;
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock().unwrap_or_else(|e| e.into_inner());
            while !*ready {
                ready = cv.wait(ready).unwrap_or_else(|e| e.into_inner());
            }
            drop(ready);
            t.join();
        });
        assert!(
            matches!(report.violation, Some(Violation::Deadlock(_))),
            "expected the lost wakeup to deadlock, got {:?}",
            report.violation
        );
    }

    #[test]
    fn random_walk_reports_like_dfs() {
        let report = explore_random(&small(), 0x5eed, 300, || {
            let n = Arc::new(AtomicUsize::new(0));
            let m = Arc::clone(&n);
            let t = spawn_join(move || {
                let v = m.load(Ordering::SeqCst);
                m.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(
            matches!(report.violation, Some(Violation::Panic(_))),
            "seeded walk should also find the lost update, got {:?}",
            report.violation
        );
    }

    #[test]
    fn step_limit_flags_livelock() {
        let report = explore(
            &Config {
                max_executions: 10,
                max_preemptions: 0,
                max_steps: 500,
            },
            || {
                let n = AtomicUsize::new(0);
                // Never terminates: the step budget must convert this
                // into a loud StepLimit violation.
                loop {
                    if n.fetch_add(1, Ordering::SeqCst) > usize::MAX - 2 {
                        break;
                    }
                }
            },
        );
        assert!(
            matches!(report.violation, Some(Violation::StepLimit(_))),
            "{:?}",
            report.violation
        );
    }

    #[test]
    fn shims_fall_back_to_std_outside_explore() {
        // No execution in scope: everything must behave like std.
        let m = Arc::new(Mutex::new(0usize));
        let n = Arc::new(AtomicUsize::new(0));
        let (m2, n2) = (Arc::clone(&m), Arc::clone(&n));
        let t = spawn_join(move || {
            *m2.lock().unwrap_or_else(|e| e.into_inner()) += 1;
            n2.fetch_add(1, Ordering::SeqCst);
        });
        *m.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        n.fetch_add(1, Ordering::SeqCst);
        t.join();
        assert_eq!(*m.lock().unwrap_or_else(|e| e.into_inner()), 2);
        assert_eq!(n.load(Ordering::SeqCst), 2);
    }
}
