//! Deterministic scheduler + bounded-DFS interleaving exploration.
//!
//! Model "threads" are real OS threads, but every interleaving-relevant
//! operation (shim mutex/condvar/atomic/spawn/yield — see [`crate::shim`])
//! funnels through one cooperative token: exactly **one** model thread
//! runs at a time, and at every operation the scheduler decides which
//! thread runs next. Each such decision with more than one runnable
//! thread is a *branch point*; [`explore`] drives a depth-first search
//! over the branch tree, replaying a recorded choice prefix and taking
//! the first unexplored alternative, until the tree is exhausted or the
//! execution budget runs out. The search is **bounded** two ways:
//!
//! * a *preemption bound* ([`Config::max_preemptions`]): switching away
//!   from a thread that could still run costs one preemption; once the
//!   budget is spent the current thread runs on until it blocks. This is
//!   the CHESS-style reduction — almost all protocol bugs manifest
//!   within a small number of preemptions, and the bound turns an
//!   intractable tree into an exhaustible one;
//! * a per-execution *step limit* ([`Config::max_steps`]) that converts
//!   livelocks into loud [`Violation::StepLimit`] reports.
//!
//! What the model checks (and what it cannot):
//!
//! * interleavings are explored under **sequential consistency** — the
//!   shims serialise every access, so weak-memory reorderings are out of
//!   scope (the substrate's atomics are flag/ticket counters whose
//!   protocol correctness, not ordering-sensitivity, is the risk);
//! * condvar wakeups are **exact** (no spurious wakeups), so a dropped
//!   notify deterministically surfaces as [`Violation::Deadlock`]
//!   instead of being masked by a lucky spurious wake;
//! * a panic that escapes the model body or a model thread is reported
//!   as [`Violation::Panic`] — invariant `assert!`s inside a model body
//!   become checkable outcomes rather than test aborts.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Hard cap on explored executions (the DFS usually exhausts first).
    pub max_executions: usize,
    /// Preemption budget per execution (CHESS-style bound; switches away
    /// from a blocked thread are always free).
    pub max_preemptions: usize,
    /// Scheduling-point budget per execution; exceeding it reports
    /// [`Violation::StepLimit`] (a livelocked protocol, not a slow one).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_executions: 500_000,
            max_preemptions: 2,
            max_steps: 50_000,
        }
    }
}

/// A property violation found by the checker. The execution that
/// produced it is identified by [`Report::trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// No thread can run but not every thread has finished — a lost
    /// wakeup, a missing notify, or a circular wait. The payload
    /// describes every thread's blocked state.
    Deadlock(String),
    /// A panic escaped the model body or a model thread (an invariant
    /// assertion, an index error, a propagated worker panic…).
    Panic(String),
    /// Replaying a recorded choice prefix met a different number of
    /// runnable threads — the body is not a pure function of the
    /// schedule (e.g. it consults real time or an unshimmed primitive).
    Nondeterminism(String),
    /// The execution exceeded [`Config::max_steps`] scheduling points.
    StepLimit(String),
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct interleavings executed.
    pub executions: usize,
    /// `true` when the (preemption-bounded) branch tree was fully
    /// explored rather than cut off by `max_executions`.
    pub exhausted: bool,
    /// First violation found, if any (exploration stops on it).
    pub violation: Option<Violation>,
    /// Branch choices `(taken, options)` of the last execution — the
    /// replayable schedule of the violation when there is one.
    pub trace: Vec<(usize, usize)>,
}

/// One recorded branch decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Choice {
    taken: usize,
    options: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    /// The driver thread waiting for every other model thread to finish.
    JoinAll,
    Finished,
}

/// Panic payload used to unwind model threads when an execution aborts
/// (violation found or exploration shutting down). Never escapes the
/// explorer.
pub(crate) struct ModelAbort;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // xorshift64*: deterministic, tiny, good enough to scatter
        // schedule choices.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

struct ExecState {
    status: Vec<Status>,
    names: Vec<String>,
    /// Thread currently holding the run token.
    running: usize,
    steps: usize,
    preemptions: usize,
    /// Branch-point cursor within `path` for this execution.
    depth: usize,
    /// Replay prefix + recorded extension.
    path: Vec<Choice>,
    /// `Some` = seeded-random walk instead of DFS replay/record.
    random: Option<Lcg>,
    aborted: bool,
    violation: Option<Violation>,
}

pub(crate) struct Execution {
    st: Mutex<ExecState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    max_preemptions: usize,
    max_steps: usize,
}

thread_local! {
    /// The execution this OS thread participates in, and its model tid.
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The execution + tid of the calling thread when it is a model thread.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(e, t)| (Arc::clone(e), *t)))
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Execution {
    fn new(config: &Config, path: Vec<Choice>, random: Option<u64>) -> Self {
        Self {
            st: Mutex::new(ExecState {
                status: vec![Status::Runnable],
                names: vec!["main".to_string()],
                running: 0,
                steps: 0,
                preemptions: 0,
                depth: 0,
                path,
                random: random.map(|seed| Lcg(seed | 1)),
                aborted: false,
                violation: None,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            max_preemptions: config.max_preemptions,
            max_steps: config.max_steps,
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn abort_locked(&self, st: &mut ExecState, v: Violation) {
        if st.violation.is_none() {
            st.violation = Some(v);
        }
        st.aborted = true;
        self.cv.notify_all();
    }

    pub(crate) fn abort(&self, v: Violation) {
        let mut st = self.lock();
        self.abort_locked(&mut st, v);
    }

    fn effectively_runnable(st: &ExecState, tid: usize) -> bool {
        match st.status[tid] {
            Status::Runnable => true,
            Status::BlockedJoin(t) => st.status[t] == Status::Finished,
            Status::JoinAll => st
                .status
                .iter()
                .enumerate()
                .all(|(i, s)| i == tid || *s == Status::Finished),
            _ => false,
        }
    }

    fn describe(st: &ExecState) -> String {
        let mut out = String::new();
        for (tid, s) in st.status.iter().enumerate() {
            out.push_str(&format!("\n  [{tid}] {}: {s:?}", st.names[tid]));
        }
        out
    }

    /// Picks the next thread to run. `None` means the execution is over
    /// (all threads finished) or has been aborted.
    fn schedule_next(&self, st: &mut ExecState) -> Option<usize> {
        if st.aborted {
            return None;
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            let msg = format!(
                "execution exceeded {} scheduling points (livelock?)",
                self.max_steps
            );
            self.abort_locked(st, Violation::StepLimit(msg));
            return None;
        }
        let runnable: Vec<usize> = (0..st.status.len())
            .filter(|&t| Self::effectively_runnable(st, t))
            .collect();
        if runnable.is_empty() {
            if st.status.iter().all(|s| *s == Status::Finished) {
                return None;
            }
            let msg = format!("no runnable thread:{}", Self::describe(st));
            self.abort_locked(st, Violation::Deadlock(msg));
            return None;
        }
        let cur = st.running;
        let cur_runnable = runnable.contains(&cur);
        // Once the preemption budget is spent the current thread keeps
        // running until it blocks — the CHESS-style reduction that makes
        // the tree exhaustible.
        let options = if cur_runnable && st.preemptions >= self.max_preemptions {
            vec![cur]
        } else {
            runnable
        };
        let idx = if options.len() == 1 {
            0
        } else {
            self.pick(st, options.len())?
        };
        let next = options[idx];
        if cur_runnable && next != cur {
            st.preemptions += 1;
        }
        st.running = next;
        Some(next)
    }

    /// Resolves one branch point with `n` options: replay the recorded
    /// prefix, then extend depth-first (or draw from the seeded walk).
    fn pick(&self, st: &mut ExecState, n: usize) -> Option<usize> {
        let d = st.depth;
        st.depth += 1;
        if let Some(rng) = &mut st.random {
            let taken = (rng.next() % n as u64) as usize;
            st.path.push(Choice { taken, options: n });
            return Some(taken);
        }
        if d < st.path.len() {
            let c = st.path[d];
            if c.options != n {
                let msg = format!(
                    "branch {d}: {n} runnable threads now, {} on the recorded path",
                    c.options
                );
                self.abort_locked(st, Violation::Nondeterminism(msg));
                return None;
            }
            Some(c.taken)
        } else {
            st.path.push(Choice {
                taken: 0,
                options: n,
            });
            Some(0)
        }
    }

    /// Parks the calling model thread until it is scheduled again.
    /// Panics with [`ModelAbort`] if the execution aborts meanwhile.
    fn park(&self, mut st: MutexGuard<'_, ExecState>, me: usize) {
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.running == me {
                // Join-style blocks are woken implicitly (their wake
                // condition is evaluated by the scheduler); normalise.
                st.status[me] = Status::Runnable;
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A scheduling point: the calling thread stays runnable but the
    /// scheduler may hand the token to another thread (a branch point
    /// when several are runnable and preemptions remain).
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock();
        if st.aborted {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        debug_assert_eq!(st.running, me, "yield from a descheduled thread");
        match self.schedule_next(&mut st) {
            Some(next) if next == me => (),
            Some(_) => {
                self.cv.notify_all();
                self.park(st, me);
            }
            // `me` is runnable, so `None` can only mean abort.
            None => {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
        }
    }

    /// Blocks the calling thread with `status` and schedules away; the
    /// thread resumes once a waker marks it runnable *and* the scheduler
    /// picks it.
    pub(crate) fn block(&self, me: usize, status: Status) {
        let mut st = self.lock();
        if st.aborted {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        debug_assert_eq!(st.running, me, "block from a descheduled thread");
        st.status[me] = status;
        match self.schedule_next(&mut st) {
            // A join on an already-finished target may re-pick us.
            Some(next) if next == me => {
                st.status[me] = Status::Runnable;
            }
            Some(_) => {
                self.cv.notify_all();
                self.park(st, me);
            }
            None => {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
        }
    }

    /// Marks every thread blocked on shim mutex `id` runnable (called by
    /// the guard-drop release hook; the next scheduling point makes them
    /// eligible).
    pub(crate) fn mutex_released(&self, id: usize) {
        let mut st = self.lock();
        for s in st.status.iter_mut() {
            if *s == Status::BlockedMutex(id) {
                *s = Status::Runnable;
            }
        }
    }

    /// Wakes threads blocked on shim condvar `id`. `notify_one` wakes
    /// the lowest tid — a deterministic stand-in for the unspecified
    /// choice real condvars make.
    pub(crate) fn condvar_notify(&self, id: usize, all: bool) {
        let mut st = self.lock();
        for s in st.status.iter_mut() {
            if *s == Status::BlockedCondvar(id) {
                *s = Status::Runnable;
                if !all {
                    break;
                }
            }
        }
    }

    /// Registers and starts a new model thread; returns its tid.
    /// Registration itself is a scheduling point (the child may run
    /// before the spawner's next step).
    pub(crate) fn spawn(
        self: &Arc<Self>,
        name: String,
        f: Box<dyn FnOnce() + Send>,
        me: usize,
    ) -> usize {
        let tid = {
            let mut st = self.lock();
            if st.aborted {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            st.status.push(Status::Runnable);
            st.names.push(name.clone());
            st.status.len() - 1
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || model_thread_main(exec, tid, f))
            .expect("spawn model thread");
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        self.yield_point(me);
        tid
    }

    /// Parks a freshly spawned thread until its first schedule. Returns
    /// `false` when the execution aborted before the thread ever ran.
    fn park_initial(&self, tid: usize) -> bool {
        let mut st = self.lock();
        loop {
            if st.aborted {
                st.status[tid] = Status::Finished;
                return false;
            }
            if st.running == tid {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn thread_finished(&self, tid: usize) {
        let mut st = self.lock();
        st.status[tid] = Status::Finished;
        if st.aborted {
            return;
        }
        // Hand the token onward; `None` here means every thread is done
        // (the driver is woken by the notify below in either case).
        let _ = self.schedule_next(&mut st);
        self.cv.notify_all();
    }

    /// Driver-side: wait for every spawned model thread to finish
    /// (scheduling them as needed). Returns silently on abort — the
    /// violation is already recorded.
    fn join_all_main(&self) {
        let mut st = self.lock();
        if st.aborted || st.status.len() == 1 {
            return;
        }
        st.status[0] = Status::JoinAll;
        match self.schedule_next(&mut st) {
            Some(0) => {
                st.status[0] = Status::Runnable;
                return;
            }
            Some(_) => self.cv.notify_all(),
            None => return,
        }
        loop {
            if st.aborted {
                return;
            }
            if st.running == 0 {
                st.status[0] = Status::Runnable;
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Body run by every spawned model OS thread.
fn model_thread_main(exec: Arc<Execution>, tid: usize, f: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    if exec.park_initial(tid) {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(()) => exec.thread_finished(tid),
            Err(p) => {
                if p.downcast_ref::<ModelAbort>().is_none() {
                    exec.abort(Violation::Panic(payload_msg(p.as_ref())));
                }
                let mut st = exec.lock();
                st.status[tid] = Status::Finished;
                exec.cv.notify_all();
            }
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Serialises explorations (they install a process-global panic hook and
/// saturate the scheduler token).
static EXPLORER_LOCK: Mutex<()> = Mutex::new(());

/// The process panic hook's type, as `std::panic::take_hook` returns it.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// Restores the previous panic hook even if the driver unwinds.
struct HookGuard(Option<PanicHook>);

impl Drop for HookGuard {
    fn drop(&mut self) {
        if let Some(h) = self.0.take() {
            std::panic::set_hook(h);
        }
    }
}

fn run_one(
    config: &Config,
    path: Vec<Choice>,
    random: Option<u64>,
    body: &(dyn Fn() + Sync),
) -> (Option<Violation>, Vec<Choice>) {
    let exec = Arc::new(Execution::new(config, path, random));
    CURRENT.with(|c| {
        assert!(
            c.borrow().is_none(),
            "explore() cannot be nested inside a model execution"
        );
        *c.borrow_mut() = Some((Arc::clone(&exec), 0));
    });
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(()) => exec.join_all_main(),
        Err(p) => {
            if p.downcast_ref::<ModelAbort>().is_none() {
                exec.abort(Violation::Panic(payload_msg(p.as_ref())));
            } else {
                // Abort already recorded by whoever raised it; make sure
                // every parked thread is woken.
                exec.cv.notify_all();
            }
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
    let handles = std::mem::take(&mut *exec.handles.lock().unwrap_or_else(|e| e.into_inner()));
    for h in handles {
        let _ = h.join();
    }
    let st = exec.lock();
    (st.violation.clone(), st.path.clone())
}

fn to_trace(path: &[Choice]) -> Vec<(usize, usize)> {
    path.iter().map(|c| (c.taken, c.options)).collect()
}

/// Explores interleavings of `body` depth-first until the
/// (preemption-bounded) branch tree is exhausted, a violation is found,
/// or [`Config::max_executions`] is reached.
///
/// `body` runs once per execution on the calling thread (model tid 0);
/// model threads it spawns through the shims are scheduled
/// deterministically. It must be a pure function of the schedule —
/// consult nothing but shim state and its own locals.
pub fn explore(config: &Config, body: impl Fn() + Sync) -> Report {
    let _guard = EXPLORER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Executions with intentional panics (propagation scenarios, found
    // violations) would otherwise print thousands of backtraces.
    let hook = HookGuard(Some(std::panic::take_hook()));
    std::panic::set_hook(Box::new(|_| {}));
    let mut path: Vec<Choice> = Vec::new();
    let mut executions = 0;
    let mut exhausted = false;
    let mut violation = None;
    let mut trace = Vec::new();
    while executions < config.max_executions {
        let (v, recorded) = run_one(config, path.clone(), None, &body);
        executions += 1;
        if v.is_some() {
            violation = v;
            trace = to_trace(&recorded);
            break;
        }
        // Backtrack: deepest branch with an untaken option.
        path = recorded;
        loop {
            match path.last_mut() {
                None => {
                    exhausted = true;
                    break;
                }
                Some(c) if c.taken + 1 < c.options => {
                    c.taken += 1;
                    break;
                }
                Some(_) => {
                    path.pop();
                }
            }
        }
        if exhausted {
            break;
        }
    }
    drop(hook);
    Report {
        executions,
        exhausted,
        violation,
        trace,
    }
}

/// Runs `executions` seeded-random interleavings of `body` (a fast smoke
/// pass for state spaces too large to exhaust; same violation reporting
/// as [`explore`], `exhausted` always `false`). Deterministic for a
/// given `seed`.
pub fn explore_random(
    config: &Config,
    seed: u64,
    executions: usize,
    body: impl Fn() + Sync,
) -> Report {
    let _guard = EXPLORER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let hook = HookGuard(Some(std::panic::take_hook()));
    std::panic::set_hook(Box::new(|_| {}));
    let mut done = 0;
    let mut violation = None;
    let mut trace = Vec::new();
    while done < executions {
        let (v, recorded) = run_one(
            config,
            Vec::new(),
            Some(seed.wrapping_add(done as u64)),
            &body,
        );
        done += 1;
        if v.is_some() {
            violation = v;
            trace = to_trace(&recorded);
            break;
        }
    }
    drop(hook);
    Report {
        executions: done,
        exhausted: false,
        violation,
        trace,
    }
}
