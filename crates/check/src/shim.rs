//! Drop-in sync primitives that route every interleaving-relevant
//! operation through the [`crate::sched`] scheduler.
//!
//! Each shim type mirrors the `std::sync` API closely enough that
//! `boson_num`'s `sync` facade can re-export either wholesale — the pool
//! source is identical under both. The shims are **hybrid**: every
//! operation first asks the scheduler whether the calling thread is a
//! registered model thread. If it is not (the primitive is used outside
//! [`crate::explore`], e.g. when cargo feature unification drags the
//! `model-check` build into an ordinary test binary), the operation
//! delegates verbatim to the real `std` primitive, so a `model-check`
//! build behaves correctly everywhere and only *scheduled* executions
//! pay the model cost.
//!
//! Model-mode semantics:
//!
//! * [`Mutex::lock`] is built on `try_lock` plus cooperative blocking —
//!   a model thread never issues a *real* blocking lock, so a
//!   descheduled guard-holder can never OS-deadlock the token scheduler.
//!   Guard drop fires a release hook that re-wakes cooperatively blocked
//!   contenders.
//! * [`Condvar::wait`] releases the guard and enters the wait set with
//!   no scheduling point in between (the atomic release+enqueue real
//!   condvars guarantee), then reacquires cooperatively. **No spurious
//!   wakeups are modeled**: a protocol that loses a notify shows up as a
//!   deterministic [`crate::Violation::Deadlock`] instead of being
//!   masked by a lucky spurious wake.
//! * Atomics hit a scheduling point *before* each access, so every
//!   load/store and RMW boundary is a potential preemption. One thread
//!   runs at a time, so the model is sequentially consistent; the
//!   caller's `Ordering` is forwarded but cannot weaken anything.
//!
//! A shim instance must be used either entirely inside model executions
//! or entirely outside — the two wait paths do not see each other.

use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicUsize as StdAtomicUsize};
use std::sync::{LockResult, PoisonError, TryLockError};

pub use std::sync::atomic::Ordering;

use crate::sched::{self, Status};

/// Process-unique id for each shim mutex/condvar (claims and wait sets
/// key on it).
fn next_id() -> usize {
    static NEXT: StdAtomicUsize = StdAtomicUsize::new(0);
    NEXT.fetch_add(1, Ordering::SeqCst)
}

/// Scheduling point when called from a model thread; no-op otherwise.
fn maybe_yield() {
    if let Some((exec, me)) = sched::current() {
        exec.yield_point(me);
    }
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Mutex shim: real `std::sync::Mutex` storage, scheduler-visible
/// acquisition.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    id: usize,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
            id: next_id(),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match sched::current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    mutex: self,
                    inner: Some(g),
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    mutex: self,
                    inner: Some(poisoned.into_inner()),
                })),
            },
            Some((exec, me)) => {
                // One scheduling point before the first attempt; a
                // contended attempt blocks cooperatively and retries
                // when the holder's guard-drop hook wakes it.
                exec.yield_point(me);
                loop {
                    match self.inner.try_lock() {
                        Ok(g) => {
                            return Ok(MutexGuard {
                                mutex: self,
                                inner: Some(g),
                            })
                        }
                        Err(TryLockError::WouldBlock) => {
                            exec.block(me, Status::BlockedMutex(self.id));
                        }
                        Err(TryLockError::Poisoned(poisoned)) => {
                            return Err(PoisonError::new(MutexGuard {
                                mutex: self,
                                inner: Some(poisoned.into_inner()),
                            }))
                        }
                    }
                }
            }
        }
    }
}

/// Guard shim. Drop releases the real lock first, then (on a model
/// thread) wakes cooperatively blocked contenders.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    /// `None` after `Condvar::wait` has taken the real guard (the
    /// wrapper is then inert and its drop is a no-op).
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by Condvar::wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by Condvar::wait")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            drop(g);
            if let Some((exec, _)) = sched::current() {
                exec.mutex_released(self.mutex.id);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Condvar shim with exact (non-spurious) wakeups in model mode.
pub struct Condvar {
    inner: std::sync::Condvar,
    id: usize,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
            id: next_id(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        let real = guard.inner.take().expect("guard taken by Condvar::wait");
        match sched::current() {
            None => match self.inner.wait(real) {
                Ok(g) => Ok(MutexGuard {
                    mutex,
                    inner: Some(g),
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    mutex,
                    inner: Some(poisoned.into_inner()),
                })),
            },
            Some((exec, me)) => {
                // Release + enqueue with no scheduling point in between
                // (the atomicity real condvars guarantee), then block
                // until a notify marks us runnable.
                drop(real);
                exec.mutex_released(mutex.id);
                exec.block(me, Status::BlockedCondvar(self.id));
                // Reacquire cooperatively, exactly like `Mutex::lock`
                // minus the entry scheduling point (the wakeup was one).
                loop {
                    match mutex.inner.try_lock() {
                        Ok(g) => {
                            return Ok(MutexGuard {
                                mutex,
                                inner: Some(g),
                            })
                        }
                        Err(TryLockError::WouldBlock) => {
                            exec.block(me, Status::BlockedMutex(mutex.id));
                        }
                        Err(TryLockError::Poisoned(poisoned)) => {
                            return Err(PoisonError::new(MutexGuard {
                                mutex,
                                inner: Some(poisoned.into_inner()),
                            }))
                        }
                    }
                }
            }
        }
    }

    pub fn notify_one(&self) {
        match sched::current() {
            None => self.inner.notify_one(),
            Some((exec, me)) => {
                exec.yield_point(me);
                exec.condvar_notify(self.id, false);
            }
        }
    }

    pub fn notify_all(&self) {
        match sched::current() {
            None => self.inner.notify_all(),
            Some((exec, me)) => {
                exec.yield_point(me);
                exec.condvar_notify(self.id, true);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

macro_rules! atomic_shim {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Atomic shim: scheduling point before every access, value held
        /// in the real std atomic.
        pub struct $name {
            inner: $std,
        }

        impl $name {
            pub const fn new(value: $prim) -> Self {
                Self {
                    inner: <$std>::new(value),
                }
            }

            pub fn load(&self, order: Ordering) -> $prim {
                maybe_yield();
                self.inner.load(order)
            }

            pub fn store(&self, value: $prim, order: Ordering) {
                maybe_yield();
                self.inner.store(value, order)
            }

            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                maybe_yield();
                self.inner.swap(value, order)
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                maybe_yield();
                self.inner.compare_exchange(current, new, success, failure)
            }
        }
    };
}

atomic_shim!(AtomicBool, StdAtomicBool, bool);
atomic_shim!(AtomicUsize, StdAtomicUsize, usize);

impl AtomicUsize {
    pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        maybe_yield();
        self.inner.fetch_add(value, order)
    }

    pub fn fetch_sub(&self, value: usize, order: Ordering) -> usize {
        maybe_yield();
        self.inner.fetch_sub(value, order)
    }

    pub fn fetch_max(&self, value: usize, order: Ordering) -> usize {
        maybe_yield();
        self.inner.fetch_max(value, order)
    }
}

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

/// Spawns a detached thread — a scheduled model thread inside an
/// execution, a real named OS thread otherwise (mirroring the pool's
/// worker spawn).
pub fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) {
    match sched::current() {
        None => {
            std::thread::Builder::new()
                .name(name.to_string())
                .spawn(f)
                .expect("spawn thread");
        }
        Some((exec, me)) => {
            exec.spawn(name.to_string(), Box::new(f), me);
        }
    }
}

/// Scheduling point (model) / `std::thread::yield_now` (otherwise).
pub fn yield_now() {
    match sched::current() {
        None => std::thread::yield_now(),
        Some((exec, me)) => exec.yield_point(me),
    }
}

enum JoinInner<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        exec: std::sync::Arc<crate::sched::Execution>,
        tid: usize,
        slot: std::sync::Arc<std::sync::Mutex<Option<T>>>,
    },
}

/// Join handle returned by [`spawn_join`].
pub struct JoinHandle<T>(JoinInner<T>);

impl<T> JoinHandle<T> {
    /// Blocks until the thread finishes and returns its result. In
    /// model mode a panic in the joined thread is reported as a
    /// [`crate::Violation::Panic`] and aborts the execution (it never
    /// reaches the joiner).
    pub fn join(self) -> T {
        match self.0 {
            JoinInner::Real(h) => match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            },
            JoinInner::Model { exec, tid, slot } => {
                let (_, me) = sched::current().expect("model join outside an execution");
                exec.block(me, Status::BlockedJoin(tid));
                slot.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined model thread left no result")
            }
        }
    }
}

/// Spawns a joinable thread — the model-aware analogue of
/// `std::thread::spawn` for harness scenarios that need a second
/// foreground actor (e.g. driving a busy pool from two callers).
pub fn spawn_join<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> JoinHandle<T> {
    match sched::current() {
        None => JoinHandle(JoinInner::Real(std::thread::spawn(f))),
        Some((exec, me)) => {
            let slot = std::sync::Arc::new(std::sync::Mutex::new(None));
            let out = std::sync::Arc::clone(&slot);
            let tid = exec.spawn(
                "model-join".to_string(),
                Box::new(move || {
                    let value = f();
                    *out.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                }),
                me,
            );
            JoinHandle(JoinInner::Model { exec, tid, slot })
        }
    }
}
