//! Model-checks the *actual* `boson_num::pool` dispatch protocol.
//!
//! Built only under `--features model-check`, which reroutes the pool's
//! `sync` facade onto `boson_check::shim` — the `WorkPool` constructed
//! inside each explored body spawns *model* workers, and every
//! mutex/condvar/atomic step of the real hand-off protocol becomes a
//! scheduling point. The invariants checked per interleaving:
//!
//! * every part ticket executes exactly once (counted with plain std
//!   atomics, which add no scheduling points);
//! * the dispatch blocks until every part has retired;
//! * busy/nested dispatch inlines serially with identical results;
//! * a worker panic re-raises exactly once on the caller and leaves the
//!   pool usable;
//! * quiescence on drop — a lost shutdown wakeup would leave a worker
//!   parked forever, which the scheduler reports as a deadlock (model
//!   condvars have no spurious wakeups, so nothing masks it).
//!
//! Invariant counters deliberately use `std::sync::atomic` (not the
//! shims): they are measurement, not protocol, and must not enlarge the
//! explored state space.

#![cfg(feature = "model-check")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use boson_check::{explore, shim, Config};
use boson_num::pool::WorkPool;

fn config(max_preemptions: usize) -> Config {
    Config {
        max_executions: 2_000_000,
        max_preemptions,
        max_steps: 20_000,
    }
}

/// The headline run: exhaustive bounded-DFS exploration of a 2-worker
/// dispatch (three lanes: the caller plus two spawned workers, two part
/// tickets). The acceptance bar is ≥ 10⁴ *distinct* interleavings with
/// the tree exhausted and every invariant holding in each.
#[test]
fn exhaustive_two_worker_dispatch() {
    // Preemption bound 3: bound 2 exhausts ~4.3k interleavings, bound 3
    // clears the 10^4 acceptance bar while staying exhaustible.
    let report = explore(&config(3), || {
        let pool = WorkPool::with_threads(3);
        let hits = [AtomicUsize::new(0), AtomicUsize::new(0)];
        pool.run(2, usize::MAX, &|_lane, part| {
            hits[part].fetch_add(1, Ordering::SeqCst);
        });
        for (part, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::SeqCst),
                1,
                "part {part} must execute exactly once"
            );
        }
        // `pool` drops here: a lost shutdown wakeup would deadlock.
    });
    assert!(
        report.violation.is_none(),
        "dispatch protocol violation: {:?}\ntrace: {:?}",
        report.violation,
        report.trace
    );
    assert!(report.exhausted, "state space not exhausted");
    assert!(
        report.executions >= 10_000,
        "only {} interleavings explored — below the 10^4 bar",
        report.executions
    );
}

/// Generation reuse: two dispatches back-to-back on the same pool (the
/// sleeping worker must distinguish the second job from the one it
/// already finished), plus a degenerate single-part dispatch that takes
/// the serial path.
#[test]
fn two_generations_reuse_the_same_workers() {
    let report = explore(&config(2), || {
        let pool = WorkPool::with_threads(2);
        for generation in 0..2 {
            let hits = [AtomicUsize::new(0), AtomicUsize::new(0)];
            pool.run(2, usize::MAX, &|_lane, part| {
                hits[part].fetch_add(1, Ordering::SeqCst);
            });
            for (part, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::SeqCst),
                    1,
                    "generation {generation}, part {part} must run exactly once"
                );
            }
        }
        let serial = AtomicUsize::new(0);
        pool.run(1, usize::MAX, &|lane, _part| {
            assert_eq!(lane, 0, "single-part dispatch stays on the caller");
            serial.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(serial.load(Ordering::SeqCst), 1);
    });
    assert!(
        report.violation.is_none(),
        "generation-reuse violation: {:?}",
        report.violation
    );
    assert!(report.exhausted);
}

/// A panic inside a part must re-raise exactly once on the dispatching
/// caller — and must not poison the pool for the next dispatch (a stale
/// stored payload would re-raise there, failing the second assert).
#[test]
fn worker_panic_reraises_exactly_once_on_the_caller() {
    let report = explore(&config(1), || {
        let pool = WorkPool::with_threads(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, usize::MAX, &|_lane, part| {
                if part == 1 {
                    panic!("model part explosion");
                }
            });
        }));
        assert!(outcome.is_err(), "the part panic must reach the caller");
        let clean = [AtomicUsize::new(0), AtomicUsize::new(0)];
        pool.run(2, usize::MAX, &|_lane, part| {
            clean[part].fetch_add(1, Ordering::SeqCst);
        });
        for h in &clean {
            assert_eq!(h.load(Ordering::SeqCst), 1, "pool unusable after panic");
        }
    });
    assert!(
        report.violation.is_none(),
        "panic-propagation violation: {:?}",
        report.violation
    );
    assert!(report.exhausted);
}

/// A dispatch issued from inside a part must inline serially on the
/// calling lane (worker lanes via the `IN_WORKER` flag, the caller lane
/// via the busy check) instead of deadlocking on the busy pool.
#[test]
fn nested_dispatch_inlines_serially() {
    let report = explore(&config(1), || {
        let pool = WorkPool::with_threads(2);
        let outer = AtomicUsize::new(0);
        pool.run(2, usize::MAX, &|_lane, _part| {
            let inner = AtomicUsize::new(0);
            pool.run(2, usize::MAX, &|inner_lane, _p| {
                assert_eq!(inner_lane, 0, "nested dispatch must stay inline");
                inner.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(inner.load(Ordering::SeqCst), 2);
            outer.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(outer.load(Ordering::SeqCst), 2);
    });
    assert!(
        report.violation.is_none(),
        "nested-dispatch violation: {:?}",
        report.violation
    );
    assert!(report.exhausted);
}

/// Two foreground threads dispatching on the same pool concurrently:
/// whichever publishes second must inline serially (single-flight), and
/// both must still see every one of their parts exactly once.
#[test]
fn busy_dispatch_from_second_caller_inlines() {
    let report = explore(&config(1), || {
        let pool = Arc::new(WorkPool::with_threads(2));
        let other_pool = Arc::clone(&pool);
        let other_hits = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let other_hits2 = Arc::clone(&other_hits);
        let rival = shim::spawn_join(move || {
            other_pool.run(2, usize::MAX, &|_lane, part| {
                other_hits2[part].fetch_add(1, Ordering::SeqCst);
            });
        });
        let hits = [AtomicUsize::new(0), AtomicUsize::new(0)];
        pool.run(2, usize::MAX, &|_lane, part| {
            hits[part].fetch_add(1, Ordering::SeqCst);
        });
        rival.join();
        for part in 0..2 {
            assert_eq!(hits[part].load(Ordering::SeqCst), 1);
            assert_eq!(other_hits[part].load(Ordering::SeqCst), 1);
        }
    });
    assert!(
        report.violation.is_none(),
        "busy-dispatch violation: {:?}",
        report.violation
    );
    assert!(report.exhausted);
}

/// Dropping a never-used pool must wake and retire its workers (the
/// shutdown notify) — a lost wakeup parks a model worker forever and is
/// reported as a deadlock.
#[test]
fn drop_quiesces_idle_workers() {
    let report = explore(&config(2), || {
        let pool = WorkPool::with_threads(3);
        drop(pool);
    });
    assert!(
        report.violation.is_none(),
        "shutdown violation: {:?}",
        report.violation
    );
    assert!(report.exhausted);
}
