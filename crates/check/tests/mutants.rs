//! Regression suite: the checker must *detect* broken protocols, not
//! just bless working ones.
//!
//! A miniature replica of the pool's hand-off protocol (publish a job
//! under a mutex, wake workers by condvar, claim part tickets off a
//! shared counter, retire them through a `remaining` count, notify the
//! caller when it hits zero) is built directly on the shims in three
//! variants:
//!
//! * **correct** — passes the exhaustive DFS clean;
//! * **dropped notify** — the publisher forgets `work_cv.notify_all()`;
//!   model condvars have no spurious wakeups, so the worker parks
//!   forever and the checker reports a deadlock;
//! * **double dispatch** — the ticket claim is a load+store instead of
//!   `fetch_add`, so two workers can claim the same part; the
//!   exactly-once assertion panics and the checker reports it.
//!
//! Each broken variant is caught both by the exhaustive search and by
//! the seeded-random walk (the mode used for state spaces too large to
//! exhaust), so both exploration paths are regression-tested. This file
//! needs no cargo feature: it exercises `boson_check`'s own API.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::Arc;

use boson_check::shim::{spawn_join, AtomicUsize, Condvar, Mutex, Ordering};
use boson_check::{explore, explore_random, Config, Report, Violation};

const PARTS: usize = 2;

#[derive(Clone, Copy, PartialEq)]
enum Ticket {
    /// Correct: one atomic RMW claims a unique part.
    FetchAdd,
    /// Mutant: load-then-store lets two workers claim the same part.
    LoadStore,
}

/// Shared state of the miniature hand-off protocol.
struct Proto {
    /// `true` once the job is published.
    job: Mutex<bool>,
    work_cv: Condvar,
    done_cv: Condvar,
    next: AtomicUsize,
    remaining: AtomicUsize,
    /// Exactly-once evidence; std atomics so the invariant check adds
    /// no scheduling points.
    hits: [StdAtomicUsize; PARTS],
}

fn worker(proto: &Proto, ticket: Ticket) {
    {
        let mut job = proto.job.lock().unwrap_or_else(|e| e.into_inner());
        while !*job {
            job = proto.work_cv.wait(job).unwrap_or_else(|e| e.into_inner());
        }
    }
    loop {
        let part = match ticket {
            Ticket::FetchAdd => proto.next.fetch_add(1, Ordering::SeqCst),
            Ticket::LoadStore => {
                // The race under test: another worker can interleave
                // between the load and the store and claim the same part.
                let part = proto.next.load(Ordering::SeqCst);
                proto.next.store(part + 1, Ordering::SeqCst);
                part
            }
        };
        if part >= PARTS {
            return;
        }
        let prev = proto.hits[part].fetch_add(1, StdOrdering::SeqCst);
        assert_eq!(prev, 0, "part {part} dispatched twice");
        if proto.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Lock before notifying so the caller cannot check the
            // predicate and park between our decrement and the wake.
            let _job = proto.job.lock().unwrap_or_else(|e| e.into_inner());
            proto.done_cv.notify_all();
        }
    }
}

/// One execution of the protocol body: publish, let `workers` drain the
/// tickets, wait for completion, check exactly-once.
fn protocol(workers: usize, notify: bool, ticket: Ticket) {
    let proto = Arc::new(Proto {
        job: Mutex::new(false),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        next: AtomicUsize::new(0),
        remaining: AtomicUsize::new(PARTS),
        hits: [StdAtomicUsize::new(0), StdAtomicUsize::new(0)],
    });
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let proto = Arc::clone(&proto);
            spawn_join(move || worker(&proto, ticket))
        })
        .collect();
    {
        let mut job = proto.job.lock().unwrap_or_else(|e| e.into_inner());
        *job = true;
        if notify {
            proto.work_cv.notify_all();
        }
    }
    {
        let mut job = proto.job.lock().unwrap_or_else(|e| e.into_inner());
        while proto.remaining.load(Ordering::SeqCst) != 0 {
            job = proto.done_cv.wait(job).unwrap_or_else(|e| e.into_inner());
        }
    }
    for handle in handles {
        handle.join();
    }
    for (part, h) in proto.hits.iter().enumerate() {
        assert_eq!(h.load(StdOrdering::SeqCst), 1, "part {part} hit count");
    }
}

fn dfs(workers: usize, notify: bool, ticket: Ticket) -> Report {
    explore(
        &Config {
            max_executions: 500_000,
            max_preemptions: 2,
            max_steps: 10_000,
        },
        move || protocol(workers, notify, ticket),
    )
}

fn seeded(workers: usize, notify: bool, ticket: Ticket) -> Report {
    explore_random(
        &Config {
            max_executions: 500_000,
            max_preemptions: 2,
            max_steps: 10_000,
        },
        0x00b0_5eed,
        2_000,
        move || protocol(workers, notify, ticket),
    )
}

#[test]
fn correct_protocol_is_exhaustively_clean() {
    let report = dfs(1, true, Ticket::FetchAdd);
    assert!(
        report.violation.is_none(),
        "correct protocol flagged: {:?}\ntrace: {:?}",
        report.violation,
        report.trace
    );
    assert!(report.exhausted, "correct protocol tree not exhausted");
    assert!(report.executions > 10, "suspiciously small state space");
}

#[test]
fn correct_two_worker_protocol_is_clean_under_seeded_walk() {
    let report = seeded(2, true, Ticket::FetchAdd);
    assert!(
        report.violation.is_none(),
        "correct 2-worker protocol flagged: {:?}",
        report.violation
    );
}

#[test]
fn dropped_notify_is_caught_as_deadlock() {
    let report = dfs(1, false, Ticket::FetchAdd);
    match report.violation {
        Some(Violation::Deadlock(ref msg)) => {
            assert!(
                msg.contains("BlockedCondvar"),
                "deadlock report should show the parked waiter: {msg}"
            );
        }
        ref other => panic!("dropped notify not caught; got {other:?}"),
    }
}

#[test]
fn dropped_notify_is_caught_by_the_seeded_walk_too() {
    let report = seeded(1, false, Ticket::FetchAdd);
    assert!(
        matches!(report.violation, Some(Violation::Deadlock(_))),
        "seeded walk missed the dropped notify: {:?}",
        report.violation
    );
}

#[test]
fn double_dispatch_is_caught_as_exactly_once_panic() {
    let report = dfs(2, true, Ticket::LoadStore);
    match report.violation {
        Some(Violation::Panic(ref msg)) => {
            assert!(
                msg.contains("dispatched twice"),
                "expected the exactly-once assertion, got: {msg}"
            );
        }
        ref other => panic!("double dispatch not caught; got {other:?}"),
    }
}

#[test]
fn double_dispatch_is_caught_by_the_seeded_walk_too() {
    let report = seeded(2, true, Ticket::LoadStore);
    assert!(
        matches!(report.violation, Some(Violation::Panic(_))),
        "seeded walk missed the double dispatch: {:?}",
        report.violation
    );
}

/// The detector's report must be actionable: the violating execution's
/// schedule comes back as a replayable branch trace.
#[test]
fn violations_come_with_a_replayable_trace() {
    let report = dfs(1, false, Ticket::FetchAdd);
    assert!(report.violation.is_some());
    assert!(
        !report.trace.is_empty(),
        "violation should carry its schedule trace"
    );
    for (taken, options) in &report.trace {
        assert!(taken < options, "malformed trace entry");
    }
}

/// Drive the panic path through `catch_unwind` as the test harness does,
/// making sure a violating explore leaves the process panic hook intact
/// for subsequent ordinary tests.
#[test]
fn explore_restores_the_panic_hook() {
    let _ = dfs(2, true, Ticket::LoadStore);
    let caught = catch_unwind(AssertUnwindSafe(|| panic!("ordinary panic")));
    assert!(caught.is_err());
}
