//! Linter rules against the checked-in fixture files: the good fixture
//! must lint clean and each bad fixture must trip exactly its rule.
//!
//! The fixtures are fed through [`xtask::lint_source`] under a fake
//! non-substrate, non-test path (`crates/fixture/src/…`) so every rule
//! applies at full strength; the fixture *directory* itself is on the
//! default config's skip list, so `cargo run -p xtask -- check` never
//! flags these deliberately-broken files.

use xtask::{default_config, lint_source, Rule, Violation};

const GOOD: &str = include_str!("fixtures/good.rs");
const BAD_SAFETY: &str = include_str!("fixtures/bad_missing_safety.rs");
const BAD_SPAWN: &str = include_str!("fixtures/bad_thread_spawn.rs");
const BAD_MUTEX: &str = include_str!("fixtures/bad_raw_mutex.rs");
const BAD_RELAXED: &str = include_str!("fixtures/bad_relaxed.rs");

/// Lints `src` as if it lived in ordinary (non-substrate, non-test)
/// crate code.
fn lint(name: &str, src: &str) -> Vec<Violation> {
    lint_source(
        &format!("crates/fixture/src/{name}"),
        src,
        &default_config(),
    )
}

/// Every violation must carry `rule`, and there must be at least one —
/// a fixture that trips extra rules would mask a regression in the one
/// it is meant to pin down.
fn assert_only_rule(violations: &[Violation], rule: Rule) {
    assert!(!violations.is_empty(), "fixture tripped nothing");
    for v in violations {
        assert_eq!(v.rule, rule, "unexpected extra finding: {v}");
    }
}

#[test]
fn good_fixture_lints_clean() {
    let violations = lint("good.rs", GOOD);
    assert!(
        violations.is_empty(),
        "good fixture flagged: {}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn missing_safety_fixture_trips_the_safety_rule() {
    let violations = lint("bad_missing_safety.rs", BAD_SAFETY);
    assert_only_rule(&violations, Rule::SafetyComment);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].line, 6, "should point at the unsafe block");
}

#[test]
fn thread_spawn_fixture_trips_the_spawn_rule() {
    let violations = lint("bad_thread_spawn.rs", BAD_SPAWN);
    assert_only_rule(&violations, Rule::ThreadSpawn);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].line, 6, "should point at the spawn call");
}

#[test]
fn raw_mutex_fixture_trips_the_sync_rule() {
    let violations = lint("bad_raw_mutex.rs", BAD_MUTEX);
    assert_only_rule(&violations, Rule::SyncPrimitive);
}

#[test]
fn relaxed_fixture_trips_the_justification_rule() {
    let violations = lint("bad_relaxed.rs", BAD_RELAXED);
    assert_only_rule(&violations, Rule::RelaxedJustification);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].line, 8, "should point at the Relaxed use");
}

/// The same raw-mutex source under a test path is exempt from the
/// sync-primitive rule (tests may build throwaway scaffolding), while
/// the safety rule still applies everywhere.
#[test]
fn path_classification_relaxes_sync_rules_for_tests() {
    let as_test = lint_source(
        "crates/fixture/tests/scaffold.rs",
        BAD_MUTEX,
        &default_config(),
    );
    assert!(
        as_test.is_empty(),
        "raw sync in a test file should be exempt: {as_test:?}"
    );
    let safety_as_test = lint_source(
        "crates/fixture/tests/scaffold.rs",
        BAD_SAFETY,
        &default_config(),
    );
    assert_only_rule(&safety_as_test, Rule::SafetyComment);
}

/// Inside the facade itself the raw primitives are the point — the same
/// mutex source lints clean there.
#[test]
fn facade_paths_may_use_raw_primitives() {
    let in_facade = lint_source("crates/num/src/pool.rs", BAD_MUTEX, &default_config());
    assert!(
        in_facade.is_empty(),
        "facade should be allowed raw sync: {in_facade:?}"
    );
}
