//! Fixture: `Ordering::Relaxed` with no `// Relaxed:` justification
//! comment — must trip the relaxed-justification rule. (Deliberately
//! avoids naming an `Atomic*` type so only one rule fires.)

use std::sync::atomic::Ordering;

pub fn counter_order() -> Ordering {
    Ordering::Relaxed
}
