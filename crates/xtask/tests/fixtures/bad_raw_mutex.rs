//! Fixture: a raw `Mutex` outside the parallel substrate with no
//! allowlist entry — must trip the sync-primitive rule.

use std::sync::Mutex;

pub struct Cache {
    entries: Mutex<Vec<u64>>,
}

impl Cache {
    pub fn push(&self, value: u64) {
        self.entries.lock().unwrap().push(value);
    }
}
