//! Fixture: a file the linter must bless with zero findings — every
//! rule's *compliant* form in one place.

use std::sync::atomic::Ordering;

/// Reads the first element without a bounds check.
pub fn first(values: &[u64]) -> u64 {
    assert!(!values.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds.
    unsafe { *values.as_ptr() }
}

/// The ordering used for monotonic statistics counters.
pub fn counter_order() -> Ordering {
    // Relaxed: the counters are write-only telemetry — no other memory
    // depends on their value, so no ordering is needed.
    Ordering::Relaxed
}
