//! Fixture: a direct thread spawn outside the parallel substrate —
//! must trip the thread-spawn rule (all parallelism goes through
//! `boson_num::pool`).

pub fn fan_out() {
    let handle = std::thread::spawn(|| 42u64);
    let _ = handle.join();
}
