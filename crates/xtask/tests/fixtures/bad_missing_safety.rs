//! Fixture: an `unsafe` block with no `// SAFETY:` comment anywhere
//! near it — must trip the safety-comment rule.

pub fn first(values: &[u64]) -> u64 {
    assert!(!values.is_empty());
    unsafe { *values.as_ptr() }
}
