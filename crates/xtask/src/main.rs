use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {
            let root = workspace_root();
            let violations = xtask::lint_tree(&root, &xtask::default_config());
            if violations.is_empty() {
                println!("xtask check: workspace invariants hold");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask check: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- check\n\
                 (got {other:?})\n\n\
                 check   enforce workspace concurrency/safety invariants:\n\
                 - every `unsafe` site carries a // SAFETY: comment\n\
                 - thread spawns only in the boson_num::pool facade\n\
                 - raw sync primitives outside the facade need an allowlist entry\n\
                 - every Ordering::Relaxed carries a `Relaxed:` justification"
            );
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`.
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}
