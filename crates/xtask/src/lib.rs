//! Source-level workspace invariant linter (`cargo run -p xtask -- check`).
//!
//! The parallel substrate's soundness rests on conventions no compiler
//! checks on a stable offline toolchain: `unsafe` sites must state their
//! invariant, threads must only ever be spawned by the substrate, raw
//! sync primitives outside the substrate need an explicit, justified
//! exception, and relaxed atomics must say why relaxed is enough. This
//! crate enforces those conventions with a small hand-rolled pass (no
//! `syn` — the environment has no registry access):
//!
//! 1. **SafetyComment** — every line whose code contains the `unsafe`
//!    token must carry a `// SAFETY:` comment on the same line, in the
//!    contiguous comment/attribute block directly above, or (for
//!    `unsafe fn` declarations) a `# Safety` doc section. Applies
//!    everywhere, tests included.
//! 2. **ThreadSpawn** — `thread::spawn` / `thread::scope` /
//!    `thread::Builder` appear nowhere outside the `boson_num::pool`
//!    facade and the model-checker substrate. Applies everywhere.
//! 3. **SyncPrimitive** — `Mutex` / `MutexGuard` / `Condvar` / `RwLock`
//!    and raw `Atomic*` types outside the facade/substrate require an
//!    entry in the allowlist (with a reason). Test code is exempt.
//! 4. **RelaxedJustification** — every `Ordering::Relaxed` must have a
//!    comment containing `Relaxed:` on the same line or within the four
//!    lines above. Test code is exempt.
//!
//! The pass lexes each file just enough to separate code from comments
//! and strings (nested block comments, raw strings, char-vs-lifetime),
//! so tokens inside strings or docs never count, and finds `#[cfg(test)]`
//! module regions by brace matching. Fixture files under
//! `crates/xtask/tests/fixtures/` exercise each rule in both directions.

use std::fmt;
use std::path::Path;

/// Which invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// An `unsafe` site without a `// SAFETY:` comment.
    SafetyComment,
    /// A thread spawn outside the substrate.
    ThreadSpawn,
    /// A raw sync primitive outside the substrate without an allowlist
    /// entry.
    SyncPrimitive,
    /// An `Ordering::Relaxed` without a `Relaxed:` justification.
    RelaxedJustification,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Rule::SafetyComment => "safety-comment",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::SyncPrimitive => "sync-primitive",
            Rule::RelaxedJustification => "relaxed-justification",
        };
        f.write_str(name)
    }
}

/// One linter finding: file, 1-based line, rule, and what to do.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule broken.
    pub rule: Rule,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A permitted raw-sync-primitive use outside the substrate.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative path the exception applies to.
    pub file: &'static str,
    /// The primitive token permitted there (e.g. `"Mutex"`).
    pub token: &'static str,
    /// Why the primitive is sound there (shown in `--explain`-style
    /// listings; also keeps the allowlist honest).
    pub reason: &'static str,
}

/// Linter configuration: which paths are substrate, which are skipped,
/// and which raw-sync uses are allowed.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files *allowed* to spawn threads and use raw sync primitives
    /// (path suffixes): the pool facade.
    pub facade: Vec<&'static str>,
    /// Directory prefixes treated like the facade (the model checker
    /// must build on raw primitives; the linter itself holds the rule
    /// tokens).
    pub substrate: Vec<&'static str>,
    /// Directory prefixes never linted (vendored code, build output,
    /// fixture files that are *meant* to violate rules).
    pub skip: Vec<&'static str>,
    /// Permitted raw-sync uses outside facade/substrate.
    pub allow_sync: Vec<AllowEntry>,
}

/// The workspace's checked-in configuration.
pub fn default_config() -> Config {
    Config {
        facade: vec!["crates/num/src/pool.rs", "crates/num/src/sync.rs"],
        substrate: vec!["crates/check/", "crates/xtask/"],
        skip: vec![
            "vendor/",
            "target/",
            ".git/",
            // Fixtures deliberately violate every rule.
            "crates/xtask/tests/fixtures/",
        ],
        allow_sync: vec![AllowEntry {
            file: "crates/core/src/runner.rs",
            token: "Mutex",
            reason: "CornerPolicy's direct-solve pin set: a tiny once-per-run \
                     HashSet shared across worker lanes; contention-free and \
                     far from the dispatch hot path",
        }],
    }
}

// ---------------------------------------------------------------------
// Lexer: split source into per-line code text and comment text
// ---------------------------------------------------------------------

/// Per-line views of a source file with strings and comments separated
/// out of the code channel.
struct Lexed {
    /// Code with comments and string/char contents blanked.
    code: Vec<String>,
    /// Comment text (line + block, doc included), code blanked.
    comment: Vec<String>,
}

fn lex(src: &str) -> Lexed {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut code = vec![String::new()];
    let mut comment = vec![String::new()];
    let mut st = State::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == State::LineComment {
                st = State::Code;
            }
            code.push(String::new());
            comment.push(String::new());
            i += 1;
            continue;
        }
        match st {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw (byte) strings: r"...", r#"..."#, br#"..."#.
                if (c == 'r' || (c == 'b' && next == Some('r'))) && !prev_is_ident(&chars, i) {
                    let mut j = i + if c == 'b' { 2 } else { 1 };
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = State::RawStr(hashes);
                        code.last_mut().unwrap().push(' ');
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    st = State::Str;
                    code.last_mut().unwrap().push(' ');
                    i += 1;
                    continue;
                }
                if c == '\'' && !prev_is_ident(&chars, i) {
                    // Char literal vs lifetime: 'x' or '\..' is a char;
                    // 'ident (no closing quote right after) is a
                    // lifetime and stays in code.
                    if chars.get(i + 1) == Some(&'\\')
                        || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\''))
                    {
                        st = State::Char;
                        code.last_mut().unwrap().push(' ');
                        i += 1;
                        continue;
                    }
                }
                code.last_mut().unwrap().push(c);
                i += 1;
            }
            State::LineComment => {
                comment.last_mut().unwrap().push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    st = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.last_mut().unwrap().push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    st = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = State::Code;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    st = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    Lexed { code, comment }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// `true` when `tok` occurs in `line` as a whole identifier.
fn has_token(line: &str, tok: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(tok) {
        let start = from + pos;
        let end = start + tok.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `true` when `line` contains an `Atomic*` type token (`AtomicUsize`,
/// `AtomicBool`, …) as a whole identifier.
fn has_atomic_token(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("Atomic") {
        let start = from + pos;
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let next = bytes.get(start + "Atomic".len()).copied();
        if before_ok && next.is_some_and(|b| b.is_ascii_uppercase()) {
            return true;
        }
        from = start + 1;
    }
    false
}

// ---------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------

/// Marks the lines belonging to `#[cfg(test)]` items (attribute through
/// the close of the following brace block).
fn test_region_mask(lexed: &Lexed) -> Vec<bool> {
    let n = lexed.code.len();
    let mut mask = vec![false; n];
    let mut line = 0;
    while line < n {
        let code = &lexed.code[line];
        if let Some(col) = code.find("#[cfg(test)]") {
            // From the end of the attribute, scan for the first `{` and
            // its matching `}` (the annotated module/item body).
            let mut depth = 0i32;
            let mut opened = false;
            let mut l = line;
            let mut start_col = col + "#[cfg(test)]".len();
            'outer: while l < n {
                for ch in lexed.code[l][start_col..].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                    if opened && depth == 0 {
                        mask[line..=l].iter_mut().for_each(|m| *m = true);
                        line = l;
                        break 'outer;
                    }
                }
                mask[l] = true;
                l += 1;
                start_col = 0;
            }
        }
        line += 1;
    }
    mask
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

fn path_matches(rel: &str, suffixes: &[&str]) -> bool {
    suffixes
        .iter()
        .any(|s| rel.ends_with(s) || rel.starts_with(s) || rel.contains(&format!("/{s}")))
}

fn is_test_path(rel: &str) -> bool {
    ["/tests/", "/benches/", "/examples/"]
        .iter()
        .any(|seg| rel.contains(seg))
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
}

/// `true` when the contiguous comment/attribute block directly above
/// `line` (or `line` itself) contains `needle`.
fn comment_above_contains(lexed: &Lexed, line: usize, needle: &str) -> bool {
    if lexed.comment[line].contains(needle) {
        return true;
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        let code = lexed.code[l].trim();
        let is_attr_or_blank = code.is_empty() || code.starts_with('#');
        if !is_attr_or_blank {
            return false;
        }
        if lexed.comment[l].contains(needle) {
            return true;
        }
    }
    false
}

/// `true` when any comment on `line` or the `span` lines above contains
/// `needle` (used for `Relaxed:` justifications, which may sit above a
/// short run of related atomic ops).
fn comment_within_contains(lexed: &Lexed, line: usize, span: usize, needle: &str) -> bool {
    let lo = line.saturating_sub(span);
    (lo..=line).any(|l| lexed.comment[l].contains(needle))
}

/// Lints one file's source text. `rel` is the workspace-relative path
/// (used for substrate/test classification and in messages).
pub fn lint_source(rel: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let rel = rel.replace('\\', "/");
    let lexed = lex(src);
    let in_substrate = path_matches(&rel, &cfg.facade) || path_matches(&rel, &cfg.substrate);
    let test_file = is_test_path(&rel);
    let test_mask = test_region_mask(&lexed);
    let mut out = Vec::new();
    for (idx, code) in lexed.code.iter().enumerate() {
        let lineno = idx + 1;
        let in_test = test_file || test_mask[idx];
        // Rule 1: SAFETY comments, everywhere.
        if has_token(code, "unsafe")
            && !comment_above_contains(&lexed, idx, "SAFETY:")
            && !comment_above_contains(&lexed, idx, "# Safety")
        {
            out.push(Violation {
                file: rel.clone(),
                line: lineno,
                rule: Rule::SafetyComment,
                message: "`unsafe` without a `// SAFETY:` comment stating the \
                          invariant that makes it sound"
                    .into(),
            });
        }
        // Rule 2: thread spawns only in the substrate, everywhere.
        if !in_substrate {
            for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
                if code.contains(pat) {
                    out.push(Violation {
                        file: rel.clone(),
                        line: lineno,
                        rule: Rule::ThreadSpawn,
                        message: format!(
                            "`{pat}` outside the parallel substrate — dispatch \
                             on `boson_num::pool` instead (the process owns \
                             exactly one set of workers)"
                        ),
                    });
                }
            }
        }
        // Rule 3: raw sync primitives need an allowlist entry.
        if !in_substrate && !in_test {
            let mut flag = |token: &str| {
                let allowed = cfg
                    .allow_sync
                    .iter()
                    .any(|e| rel.ends_with(e.file) && e.token == token);
                if !allowed {
                    out.push(Violation {
                        file: rel.clone(),
                        line: lineno,
                        rule: Rule::SyncPrimitive,
                        message: format!(
                            "raw `{token}` outside the parallel substrate — go \
                             through `boson_num::pool`, or add an allowlist \
                             entry in xtask's default_config with a reason"
                        ),
                    });
                }
            };
            for token in ["Mutex", "MutexGuard", "Condvar", "RwLock"] {
                if has_token(code, token) {
                    flag(token);
                }
            }
            if has_atomic_token(code) {
                flag("Atomic");
            }
        }
        // Rule 4: Relaxed needs a written justification.
        if !in_test
            && code.contains("Ordering::Relaxed")
            && !comment_within_contains(&lexed, idx, 4, "Relaxed:")
        {
            out.push(Violation {
                file: rel.clone(),
                line: lineno,
                rule: Rule::RelaxedJustification,
                message: "`Ordering::Relaxed` without a `// Relaxed:` comment \
                          justifying why no ordering is needed"
                    .into(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Tree walk
// ---------------------------------------------------------------------

/// Lints every `.rs` file under `root` (minus [`Config::skip`]),
/// returning all violations sorted by path and line.
pub fn lint_tree(root: &Path, cfg: &Config) -> Vec<Violation> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files);
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let src = match std::fs::read_to_string(root.join(&rel)) {
            Ok(s) => s,
            Err(_) => continue, // non-UTF-8 or vanished mid-walk
        };
        out.extend(lint_source(&rel, &src, cfg));
    }
    out
}

fn collect_rs_files(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if cfg
            .skip
            .iter()
            .any(|s| rel.starts_with(s) || format!("{rel}/").starts_with(s))
        {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, cfg, out);
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(violations: &[Violation]) -> Vec<Rule> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn lexer_separates_comments_and_strings() {
        let lexed =
            lex("let x = \"unsafe Mutex\"; // unsafe note\nlet y = 1; /* Mutex */ let z = 2;\n");
        assert!(!lexed.code[0].contains("unsafe"));
        assert!(lexed.comment[0].contains("unsafe note"));
        assert!(!lexed.code[1].contains("Mutex"));
        assert!(lexed.code[1].contains("let z"));
    }

    #[test]
    fn lexer_handles_raw_strings_and_lifetimes() {
        let lexed = lex(
            "let p = r#\"thread::spawn \"quoted\" \"#;\nfn f<'a>(x: &'a str) -> char { 'M' }\n",
        );
        assert!(!lexed.code[0].contains("thread::spawn"));
        assert!(lexed.code[1].contains("'a"), "lifetimes stay in code");
        assert!(!lexed.code[1].contains('M'), "char literal stripped");
    }

    #[test]
    fn lexer_handles_nested_block_comments() {
        let lexed = lex("/* outer /* Mutex */ still comment */ let a = 1;\n");
        assert!(!lexed.code[0].contains("Mutex"));
        assert!(lexed.code[0].contains("let a"));
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let v = lint_source(
            "crates/foo/src/a.rs",
            "fn f() { unsafe { g(); } }\n",
            &default_config(),
        );
        assert_eq!(rules_of(&v), vec![Rule::SafetyComment]);
    }

    #[test]
    fn safety_comment_above_or_inline_passes() {
        let cfg = default_config();
        let above = "// SAFETY: g upholds the contract.\nfn f() { unsafe { g(); } }\n";
        let inline = "fn f() { unsafe { g(); } } // SAFETY: g upholds the contract.\n";
        let doc = "/// # Safety\n/// Caller guarantees x.\npub unsafe fn f() {}\n";
        assert!(lint_source("crates/foo/src/a.rs", above, &cfg).is_empty());
        assert!(lint_source("crates/foo/src/a.rs", inline, &cfg).is_empty());
        assert!(lint_source("crates/foo/src/a.rs", doc, &cfg).is_empty());
    }

    #[test]
    fn safety_comment_separated_by_code_does_not_count() {
        let cfg = default_config();
        let src = "// SAFETY: stale.\nlet x = 1;\nunsafe { g(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/foo/src/a.rs", src, &cfg)),
            vec![Rule::SafetyComment]
        );
    }

    #[test]
    fn thread_spawn_outside_substrate_is_flagged_even_in_tests() {
        let cfg = default_config();
        let v = lint_source(
            "crates/foo/tests/t.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
            &cfg,
        );
        assert_eq!(rules_of(&v), vec![Rule::ThreadSpawn]);
        assert!(lint_source(
            "crates/num/src/pool.rs",
            "fn f() { std::thread::scope(|_| {}); }\n",
            &cfg
        )
        .is_empty());
    }

    #[test]
    fn raw_sync_needs_allowlist_outside_substrate() {
        let cfg = default_config();
        let v = lint_source(
            "crates/foo/src/a.rs",
            "static M: Mutex<u32> = Mutex::new(0);\n",
            &cfg,
        );
        assert_eq!(rules_of(&v), vec![Rule::SyncPrimitive]);
        // The runner's pin-set Mutex is allowlisted.
        assert!(
            lint_source("crates/core/src/runner.rs", "use std::sync::Mutex;\n", &cfg).is_empty()
        );
        // Atomics are covered by the Atomic* family token.
        let v = lint_source(
            "crates/foo/src/a.rs",
            "use std::sync::atomic::AtomicU32;\n",
            &cfg,
        );
        assert_eq!(rules_of(&v), vec![Rule::SyncPrimitive]);
    }

    #[test]
    fn sync_rule_exempts_test_regions() {
        let cfg = default_config();
        let src = "fn main() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    #[test]\n    fn t() { let _ = Mutex::new(0); }\n}\n";
        assert!(lint_source("crates/foo/src/a.rs", src, &cfg).is_empty());
    }

    #[test]
    fn relaxed_needs_a_written_justification() {
        let cfg = default_config();
        let bad = "fn f(a: &A) { a.n.store(0, Ordering::Relaxed); }\n";
        let v = lint_source("crates/num/src/other.rs", bad, &cfg);
        assert_eq!(rules_of(&v), vec![Rule::RelaxedJustification]);
        let good = "// Relaxed: pure counter, no data published.\nfn f(a: &A) { a.n.store(0, Ordering::Relaxed); }\n";
        assert!(lint_source("crates/num/src/other.rs", good, &cfg).is_empty());
    }

    #[test]
    fn token_matching_requires_identifier_boundaries() {
        let cfg = default_config();
        // `PoolMutex` or `MutexLike` must not trip the Mutex rule.
        let src = "struct PoolMutexLike;\nfn f(x: MutexLike2) {}\n";
        assert!(lint_source("crates/foo/src/a.rs", src, &cfg).is_empty());
    }

    #[test]
    fn live_tree_is_clean() {
        // The repo itself must satisfy its own invariants — this is the
        // in-process twin of `cargo run -p xtask -- check`.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap();
        let violations = lint_tree(root, &default_config());
        assert!(
            violations.is_empty(),
            "workspace invariant violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
