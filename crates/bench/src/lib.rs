//! # boson-bench — benchmark harness for every table and figure
//!
//! Binaries (run with `cargo run -p boson-bench --release --bin <name>`):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `table1` | Table I — main results on all three benchmarks |
//! | `table2` | Table II — ablation study on the isolator |
//! | `table3` | Table III — ten-method comparison on the isolator |
//! | `fig5`   | Fig. 5 — optimisation trajectories (three configurations) |
//! | `fig6a`  | Fig. 6(a) — sampling-strategy comparison |
//! | `fig6b`  | Fig. 6(b) — subspace-relaxation epoch sweep |
//!
//! Environment knobs: `BOSON_ITERS` (optimisation iterations),
//! `BOSON_MC` (Monte-Carlo samples), `BOSON_FAST=1` (tiny smoke-test
//! settings), `BOSON_THREADS`.
//!
//! Criterion micro-benches live in `benches/` (operator assembly, banded
//! LU, litho kernels, adjoint gradients, the corner-cost scaling that
//! motivates the paper's adaptive sampling, the spectral/fused batched
//! sweeps, and the adaptive corner-subspace schedule); the gated subset
//! is driven by `scripts/bench.sh` — see `scripts/README.md` for every
//! recorded key and its acceptance floor.

use std::fmt::Write as _;

/// Shared experiment knobs, resolved from the environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpConfig {
    /// Optimisation iterations per run.
    pub iterations: usize,
    /// Monte-Carlo samples for post-fab evaluation.
    pub mc_samples: usize,
    /// Worker threads.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExpConfig {
    /// Reads the configuration from the environment with the given
    /// defaults; `BOSON_FAST=1` shrinks everything to smoke-test scale.
    pub fn from_env(default_iters: usize, default_mc: usize) -> Self {
        let fast = std::env::var("BOSON_FAST")
            .map(|v| v == "1")
            .unwrap_or(false);
        let geti = |k: &str, d: usize| -> usize {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Self {
            iterations: geti("BOSON_ITERS", if fast { 4 } else { default_iters }),
            mc_samples: geti("BOSON_MC", if fast { 3 } else { default_mc }),
            threads: geti("BOSON_THREADS", 8),
            seed: geti("BOSON_SEED", 7) as u64,
        }
    }
}

/// A minimal fixed-width ASCII table builder for the harness binaries.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+";
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w - cell.chars().count();
                let _ = write!(line, "| {cell}{} ", " ".repeat(pad));
            }
            line + "|"
        };
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

/// Formats a pre→post transition like the paper's arrows.
pub fn arrow(pre: f64, post: f64) -> String {
    format!("{pre:.4}→{post:.4}")
}

/// Formats a `[fwd, bwd]` transmission pair like Table III.
pub fn pair(fwd: f64, bwd: f64) -> String {
    format!("[{fwd:.4}, {bwd:.5}]")
}

/// Formats a FoM in compact scientific-or-fixed form like the paper.
pub fn fom_fmt(v: f64) -> String {
    if v != 0.0 && (v.abs() < 1e-2 || v.abs() >= 1e3) {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["method", "FoM"]);
        t.row(["BOSON-1", "0.97"]);
        t.row(["a-very-long-method-name", "0.1"]);
        let s = t.render();
        assert!(s.contains("BOSON-1"));
        assert!(s.contains("a-very-long-method-name"));
        let lens: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    fn arrow_and_pair_formats() {
        assert_eq!(arrow(0.9163, 0.0487), "0.9163→0.0487");
        assert!(pair(0.8275, 0.0022).starts_with("[0.8275"));
    }

    #[test]
    fn fom_formatting() {
        assert_eq!(fom_fmt(0.5), "0.5000");
        assert!(fom_fmt(4.89e-6).contains('e'));
        assert!(fom_fmt(3710.0).contains('e'));
    }

    #[test]
    fn env_config_defaults() {
        let c = ExpConfig::from_env(40, 20);
        assert!(c.iterations > 0);
        assert!(c.mc_samples > 0);
    }
}
