//! Fig. 6(a) — comparison of variation-sampling strategies on the
//! isolator: average post-fab contrast (lower is better) for
//! corner sweeping, single-sided axial, double-sided axial, nominal-only,
//! axial+random and axial+worst-case.
//!
//! ```sh
//! cargo run -p boson-bench --release --bin fig6a
//! ```

use boson_bench::{fom_fmt, ExpConfig, Table};
use boson_core::baselines::{run_method, standard_chain, BaseRunConfig, MethodSpec};
use boson_core::compiled::CompiledProblem;
use boson_core::eval::evaluate_post_fab;
use boson_core::problem::isolator;
use boson_fab::{SamplingStrategy, VariationSpace};
use std::time::Instant;

fn main() {
    let cfg = ExpConfig::from_env(50, 12);
    println!(
        "== Fig. 6(a): sampling strategies (isolator, iters={}, MC={}) ==\n",
        cfg.iterations, cfg.mc_samples
    );
    let base = BaseRunConfig {
        iterations: cfg.iterations,
        lr: 0.03,
        seed: cfg.seed,
        threads: cfg.threads,
        ..BaseRunConfig::default()
    };
    let compiled = CompiledProblem::compile(isolator()).expect("compile failed");
    let chain = standard_chain(compiled.problem());
    let space = VariationSpace::default();

    let strategies: Vec<(&str, SamplingStrategy)> = vec![
        ("Corner sweeping", SamplingStrategy::CornerSweep),
        ("Single-sided axial", SamplingStrategy::AxialSingleSided),
        ("Double-sided axial", SamplingStrategy::AxialDoubleSided),
        ("Nominal only", SamplingStrategy::NominalOnly),
        (
            "Axial+random",
            SamplingStrategy::AxialPlusRandom { count: 1 },
        ),
        ("Axial+worst case", SamplingStrategy::AxialPlusWorst),
    ];

    let mut table = Table::new(["strategy", "avg contrast↓", "sims/iter", "total sims"]);
    for (label, sampling) in strategies {
        let spec = MethodSpec {
            name: label.into(),
            sampling,
            ..MethodSpec::boson1(cfg.iterations)
        };
        let t0 = Instant::now();
        let run = run_method(&compiled, &spec, &base);
        let post = evaluate_post_fab(
            &compiled,
            &chain,
            &space,
            &run.mask,
            cfg.mc_samples,
            cfg.seed + 300,
        );
        eprintln!("  {label} done in {:.1}s", t0.elapsed().as_secs_f64());
        let per_iter = run.factorizations as f64 / cfg.iterations as f64;
        table.row([
            label.to_string(),
            fom_fmt(post.fom.mean),
            format!("{per_iter:.1}"),
            run.factorizations.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("\n(paper: axial+worst is best; single-sided axial poor; nominal-only degrades;");
    println!(" corner sweep pays 27 simulations/iteration for no robustness benefit)");
}
