//! Table II — ablation study of BOSON-1 on the optical isolator.
//!
//! Each row removes exactly one technique:
//! * `- loss landscape reshaping` — drop the dense auxiliary objectives;
//! * `- subspace relax`           — no high-dimensional tunnel (`p ≡ 1`);
//! * `exhaustive sample`          — 3³ corner sweep instead of adaptive;
//! * `random init`                — random instead of light-concentrated.
//!
//! ```sh
//! cargo run -p boson-bench --release --bin table2
//! ```

use boson_bench::{fom_fmt, pair, ExpConfig, Table};
use boson_core::baselines::{run_method, standard_chain, BaseRunConfig, MethodSpec};
use boson_core::compiled::CompiledProblem;
use boson_core::eval::evaluate_post_fab;
use boson_core::problem::isolator;
use boson_core::runner::InitKind;
use boson_fab::{SamplingStrategy, VariationSpace};
use std::time::Instant;

fn main() {
    let cfg = ExpConfig::from_env(50, 12);
    println!(
        "== Table II: ablation study (isolator, iters={}, MC={}) ==\n",
        cfg.iterations, cfg.mc_samples
    );
    let base = BaseRunConfig {
        iterations: cfg.iterations,
        lr: 0.03,
        seed: cfg.seed,
        threads: cfg.threads,
        ..BaseRunConfig::default()
    };
    let compiled = CompiledProblem::compile(isolator()).expect("compile failed");
    let chain = standard_chain(compiled.problem());
    let space = VariationSpace::default();

    let full = MethodSpec::boson1(cfg.iterations);
    let variants: Vec<(String, MethodSpec)> = vec![
        ("BOSON-1".into(), full.clone()),
        (
            "- loss landscape reshaping".into(),
            MethodSpec {
                name: "-reshape".into(),
                dense_objectives: false,
                ..full.clone()
            },
        ),
        (
            "- subspace relax".into(),
            MethodSpec {
                name: "-relax".into(),
                relax_epochs: 0,
                ..full.clone()
            },
        ),
        (
            "exhaustive sample".into(),
            MethodSpec {
                name: "exhaustive".into(),
                sampling: SamplingStrategy::CornerSweep,
                ..full.clone()
            },
        ),
        (
            "random init".into(),
            MethodSpec {
                name: "random-init".into(),
                init: InitKind::Random { amplitude: 0.2 },
                ..full.clone()
            },
        ),
    ];

    let mut table = Table::new(["model", "[fwd, bwd]", "contrast↓", "degradation", "sims"]);
    let mut baseline_contrast = None;
    for (label, spec) in variants {
        let t0 = Instant::now();
        let run = run_method(&compiled, &spec, &base);
        let post = evaluate_post_fab(
            &compiled,
            &chain,
            &space,
            &run.mask,
            cfg.mc_samples,
            cfg.seed + 500,
        );
        let fwd = post.readings_mean["fwd/trans3"];
        let bwd = post.readings_mean["bwd/leak0"] + post.readings_mean["bwd/leak2"];
        let contrast = post.fom.mean;
        eprintln!("  {label} done in {:.1}s", t0.elapsed().as_secs_f64());
        let degradation = match baseline_contrast {
            None => {
                baseline_contrast = Some(contrast);
                "N/A".to_string()
            }
            Some(b) => {
                // Paper's convention: how much of the achieved contrast
                // quality is lost, as a fraction of the ablated value.
                let d = if contrast > b {
                    (contrast - b) / contrast
                } else {
                    0.0
                };
                format!("{:.0}%", d * 100.0)
            }
        };
        table.row([
            label,
            pair(fwd, bwd),
            fom_fmt(contrast),
            degradation,
            run.factorizations.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("\n(post-fab Monte-Carlo means; contrast = Σbwd/fwd, lower is better)");
}
