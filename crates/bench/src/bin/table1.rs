//! Table I — main results: Density vs InvFabCor-M-3 vs BOSON-1 on the
//! crossing, bending and isolator benchmarks, pre→post fabrication.
//!
//! ```sh
//! cargo run -p boson-bench --release --bin table1
//! ```

use boson_bench::{fom_fmt, pair, ExpConfig, Table};
use boson_core::baselines::{run_method, standard_chain, BaseRunConfig, MethodSpec};
use boson_core::compiled::CompiledProblem;
use boson_core::eval::{evaluate_ideal, evaluate_nominal_fab, evaluate_post_fab};
use boson_core::problem::all_benchmarks;
use boson_fab::VariationSpace;
use std::time::Instant;

/// Pre-fab view: the method's own claimed performance. Non-fab-aware
/// methods see the ideal (unfabricated) design; fab-aware methods see the
/// nominal fabrication corner. InvFabCor's claim is its *stage-1* design.
fn pre_fab(
    compiled: &CompiledProblem,
    spec: &MethodSpec,
    run: &boson_core::baselines::MethodRun,
) -> (f64, Vec<std::collections::HashMap<String, f64>>) {
    let chain = standard_chain(compiled.problem());
    if spec.fab_aware {
        evaluate_nominal_fab(compiled, &chain, &run.mask)
    } else {
        evaluate_ideal(compiled, &run.stage1_mask)
    }
}

fn isolator_pair(readings: &[std::collections::HashMap<String, f64>]) -> (f64, f64) {
    let fwd = readings[0]["trans3"];
    let bwd = readings[1]["leak0"] + readings[1]["leak2"];
    (fwd, bwd)
}

fn main() {
    let cfg = ExpConfig::from_env(50, 20);
    println!(
        "== Table I: main results (iters={}, MC={}) ==\n",
        cfg.iterations, cfg.mc_samples
    );
    let base = BaseRunConfig {
        iterations: cfg.iterations,
        lr: 0.03,
        seed: cfg.seed,
        threads: cfg.threads,
        ..BaseRunConfig::default()
    };
    let space = VariationSpace::default();

    let mut table = Table::new([
        "Benchmark",
        "Model",
        "Fwd & bwd transmission",
        "Avg FoM",
        "sims",
    ]);
    let mut improvements: Vec<f64> = Vec::new();

    for problem in all_benchmarks() {
        let name = problem.name.clone();
        let is_isolator = name == "isolator";
        let compiled = CompiledProblem::compile(problem.clone()).expect("compile failed");
        let chain = standard_chain(compiled.problem());
        let mut post_foms: Vec<f64> = Vec::new();

        for spec in MethodSpec::table1_methods(cfg.iterations) {
            let t0 = Instant::now();
            let run = run_method(&compiled, &spec, &base);
            let (fom_pre, readings_pre) = pre_fab(&compiled, &spec, &run);
            let post = evaluate_post_fab(
                &compiled,
                &chain,
                &space,
                &run.mask,
                cfg.mc_samples,
                cfg.seed + 1000,
            );
            eprintln!(
                "  [{name}] {} done in {:.1}s",
                spec.name,
                t0.elapsed().as_secs_f64()
            );

            if is_isolator {
                let (f_pre, b_pre) = isolator_pair(&readings_pre);
                let f_post = post.readings_mean["fwd/trans3"];
                let b_post = post.readings_mean["bwd/leak0"] + post.readings_mean["bwd/leak2"];
                table.row([
                    name.clone(),
                    spec.name.clone(),
                    format!("{}→{}", pair(f_pre, b_pre), pair(f_post, b_post)),
                    format!("{}→{}", fom_fmt(fom_pre), fom_fmt(post.fom.mean)),
                    run.factorizations.to_string(),
                ]);
            } else {
                table.row([
                    name.clone(),
                    spec.name.clone(),
                    "N/A".to_string(),
                    format!("{}→{}", fom_fmt(fom_pre), fom_fmt(post.fom.mean)),
                    run.factorizations.to_string(),
                ]);
            }
            post_foms.push(post.fom.mean);
        }

        // Average improvement of BOSON-1 (last row) over the baselines.
        let boson = post_foms[post_foms.len() - 1];
        let mut per_bench = Vec::new();
        for &b in &post_foms[..post_foms.len() - 1] {
            let imp = if is_isolator {
                // Lower is better: fraction of baseline contrast removed.
                if b > 0.0 {
                    (b - boson) / b
                } else {
                    0.0
                }
            } else {
                // Higher is better: relative gain, capped at 100 %.
                ((boson - b) / b.max(1e-9)).min(1.0)
            };
            per_bench.push(imp);
        }
        let avg = per_bench.iter().sum::<f64>() / per_bench.len() as f64;
        improvements.push(avg);
        table.row([
            name.clone(),
            format!("avg improvement: {:.0}%", avg * 100.0),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }

    println!("{}", table.render());
    let total = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!(
        "\ntotal avg improvement: {:.1}%  (paper: 74.3%)",
        total * 100.0
    );
    println!("(bending/crossing FoM = transmission efficiency, higher better;");
    println!(" isolator FoM = isolation contrast, lower better)");
}
