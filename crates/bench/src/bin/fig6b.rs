//! Fig. 6(b) — optimised isolator contrast vs subspace-relaxation epochs
//! (0 = no relaxation). Searched on the nominal corner without variation,
//! exactly as the paper notes.
//!
//! ```sh
//! cargo run -p boson-bench --release --bin fig6b
//! ```

use boson_bench::{fom_fmt, ExpConfig, Table};
use boson_core::baselines::{run_method, standard_chain, BaseRunConfig, MethodSpec};
use boson_core::compiled::CompiledProblem;
use boson_core::eval::evaluate_nominal_fab;
use boson_core::problem::isolator;
use boson_fab::SamplingStrategy;
use std::time::Instant;

fn main() {
    let cfg = ExpConfig::from_env(50, 0);
    println!(
        "== Fig. 6(b): subspace-relaxation epoch sweep (isolator, iters={}) ==\n",
        cfg.iterations
    );
    let base = BaseRunConfig {
        iterations: cfg.iterations,
        lr: 0.03,
        seed: cfg.seed,
        threads: cfg.threads,
        ..BaseRunConfig::default()
    };
    let compiled = CompiledProblem::compile(isolator()).expect("compile failed");
    let chain = standard_chain(compiled.problem());

    let mut sweep: Vec<usize> = if cfg.iterations < 10 {
        vec![0, 1, 2]
    } else {
        vec![0, 10, 20, 30, 40, 50]
    };
    for e in &mut sweep {
        *e = (*e).min(cfg.iterations);
    }
    sweep.dedup();
    let mut table = Table::new(["relax epochs", "contrast↓ (nominal fab)", "fwd trans3"]);
    for epochs in sweep {
        let spec = MethodSpec {
            name: format!("relax-{epochs}"),
            sampling: SamplingStrategy::NominalOnly,
            relax_epochs: epochs.min(cfg.iterations),
            ..MethodSpec::boson1(cfg.iterations)
        };
        let t0 = Instant::now();
        let run = run_method(&compiled, &spec, &base);
        let (contrast, readings) = evaluate_nominal_fab(&compiled, &chain, &run.mask);
        eprintln!(
            "  relax={epochs} done in {:.1}s",
            t0.elapsed().as_secs_f64()
        );
        let label = if epochs == 0 {
            "w/o".to_string()
        } else {
            epochs.to_string()
        };
        table.row([
            label,
            fom_fmt(contrast),
            format!("{:.4}", readings[0]["trans3"]),
        ]);
    }
    println!("{}", table.render());
    println!("\n(paper: relaxation improves contrast by orders of magnitude over w/o)");
}
