//! Fig. 5 — fabrication-aware optimisation trajectories of the optical
//! isolator (no variation):
//!
//! (a) proposed: light-concentrated init + dense objectives;
//! (b) light-concentrated init + single sparse (contrast) objective;
//! (c) random init + single sparse objective.
//!
//! Prints one CSV block per configuration with the forward/backward
//! transmission, radiation and reflection series.
//!
//! ```sh
//! cargo run -p boson-bench --release --bin fig5
//! ```

use boson_bench::ExpConfig;
use boson_core::baselines::{run_method, BaseRunConfig, MethodSpec};
use boson_core::compiled::CompiledProblem;
use boson_core::problem::isolator;
use boson_core::runner::InitKind;
use boson_fab::SamplingStrategy;
use std::time::Instant;

fn main() {
    let cfg = ExpConfig::from_env(50, 0);
    println!("== Fig. 5: optimisation trajectories (isolator, nominal corner only) ==");
    let base = BaseRunConfig {
        iterations: cfg.iterations,
        lr: 0.03,
        seed: cfg.seed,
        threads: cfg.threads,
        ..BaseRunConfig::default()
    };
    let compiled = CompiledProblem::compile(isolator()).expect("compile failed");

    // Fig. 5 adds no variation: nominal-only sampling for all three.
    let proposed = MethodSpec {
        name: "a-proposed".into(),
        sampling: SamplingStrategy::NominalOnly,
        ..MethodSpec::boson1(cfg.iterations)
    };
    let sparse_good = MethodSpec {
        name: "b-sparse-good-init".into(),
        dense_objectives: false,
        ..proposed.clone()
    };
    let sparse_random = MethodSpec {
        name: "c-sparse-random-init".into(),
        init: InitKind::Random { amplitude: 0.2 },
        ..sparse_good.clone()
    };

    for spec in [proposed, sparse_good, sparse_random] {
        let t0 = Instant::now();
        let run = run_method(&compiled, &spec, &base);
        eprintln!("  {} done in {:.1}s", spec.name, t0.elapsed().as_secs_f64());
        println!("\n# {}", spec.name);
        println!(
            "iter,fwd_trans3,fwd_trans1,fwd_refl,fwd_rad,bwd_leak,bwd_reflb,bwd_radb,contrast"
        );
        for rec in &run.trajectory {
            let f = &rec.readings_nominal[0];
            let b = &rec.readings_nominal[1];
            println!(
                "{},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5}",
                rec.iter,
                f["trans3"],
                f["trans1"],
                f["refl"],
                f["rad"],
                b["leak0"] + b["leak2"],
                b["reflb"],
                b["radb"],
                rec.fom_nominal,
            );
        }
    }
    println!("\n# Expected shape (paper): (a) converges to high fwd TM3 transmission with");
    println!("# rising backward radiation; (b) stalls at mid fwd transmission; (c) stagnates");
    println!("# near zero fwd transmission (vanishing gradients from the sparse objective).");
}
