//! Table III — ten-method comparison on the optical isolator, all with
//! the light-concentrated initialisation ("good init").
//!
//! ```sh
//! cargo run -p boson-bench --release --bin table3
//! ```

use boson_bench::{fom_fmt, pair, ExpConfig, Table};
use boson_core::baselines::{run_method, standard_chain, BaseRunConfig, MethodSpec};
use boson_core::compiled::CompiledProblem;
use boson_core::eval::{evaluate_ideal, evaluate_nominal_fab, evaluate_post_fab};
use boson_core::problem::isolator;
use boson_fab::VariationSpace;
use std::collections::HashMap;
use std::time::Instant;

fn pre_view(
    compiled: &CompiledProblem,
    spec: &MethodSpec,
    run: &boson_core::baselines::MethodRun,
) -> (f64, Vec<HashMap<String, f64>>) {
    let chain = standard_chain(compiled.problem());
    if spec.fab_aware {
        evaluate_nominal_fab(compiled, &chain, &run.mask)
    } else {
        evaluate_ideal(compiled, &run.stage1_mask)
    }
}

fn main() {
    let cfg = ExpConfig::from_env(50, 12);
    println!(
        "== Table III: method comparison on the isolator (iters={}, MC={}) ==\n",
        cfg.iterations, cfg.mc_samples
    );
    let base = BaseRunConfig {
        iterations: cfg.iterations,
        lr: 0.03,
        seed: cfg.seed,
        threads: cfg.threads,
        ..BaseRunConfig::default()
    };
    let compiled = CompiledProblem::compile(isolator()).expect("compile failed");
    let chain = standard_chain(compiled.problem());
    let space = VariationSpace::default();

    let mut table = Table::new(["model", "Fwd & bwd transmission", "Avg FoM", "sims"]);
    for spec in MethodSpec::table3_methods(cfg.iterations) {
        let t0 = Instant::now();
        let run = run_method(&compiled, &spec, &base);
        let (_, pre_readings) = pre_view(&compiled, &spec, &run);
        // The contrast FoM at the pre view (even for the -eff variant we
        // report contrast, like the paper).
        let f_pre = pre_readings[0]["trans3"];
        let b_pre = pre_readings[1]["leak0"] + pre_readings[1]["leak2"];
        let pre_contrast = b_pre / (f_pre + 1e-6);
        let post = evaluate_post_fab(
            &compiled,
            &chain,
            &space,
            &run.mask,
            cfg.mc_samples,
            cfg.seed + 2000,
        );
        let f_post = post.readings_mean["fwd/trans3"];
        let b_post = post.readings_mean["bwd/leak0"] + post.readings_mean["bwd/leak2"];
        eprintln!("  {} done in {:.1}s", spec.name, t0.elapsed().as_secs_f64());
        let is_boson = spec.name == "BOSON-1";
        table.row([
            spec.name.clone(),
            if is_boson {
                pair(f_post, b_post)
            } else {
                format!("{}→{}", pair(f_pre, b_pre), pair(f_post, b_post))
            },
            if is_boson {
                fom_fmt(post.fom.mean)
            } else {
                format!("{}→{}", fom_fmt(pre_contrast), fom_fmt(post.fom.mean))
            },
            run.factorizations.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("\n(Avg FoM = isolation contrast under Monte-Carlo variation; lower is better.");
    println!(
        " BOSON-1 rows show post-fab only — its optimisation target *is* the fabricated device.)"
    );
}
