//! Micro-benchmarks of the numerical kernels: FFT, lithography imaging
//! (forward and vjp), etch projection and EOLE field realisation.

use boson_fab::{EoleField, EoleParams, EtchProjection};
use boson_litho::{LithoConfig, LithoCorner, LithoModel};
use boson_num::fft::fft2;
use boson_num::{Array2, Complex64};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let a = Array2::from_fn(128, 128, |r, cc| {
        Complex64::new((r as f64 * 0.1).sin(), (cc as f64 * 0.2).cos())
    });
    c.bench_function("fft2_128x128", |b| {
        b.iter(|| {
            let mut x = a.clone();
            fft2(&mut x);
            black_box(x)
        })
    });
}

fn bench_litho(c: &mut Criterion) {
    let n = 36;
    let model = LithoModel::new(n, n, 0.05, LithoConfig::default());
    let mask = Array2::from_fn(n, n, |r, _| if r.abs_diff(n / 2) < 5 { 1.0 } else { 0.0 });
    c.bench_function("litho_forward_36x36", |b| {
        b.iter(|| black_box(model.aerial_image(&mask, LithoCorner::Nominal)))
    });
    let fwd = model.aerial_image(&mask, LithoCorner::Nominal);
    let v = Array2::filled(n, n, 0.5);
    c.bench_function("litho_vjp_36x36", |b| {
        b.iter(|| black_box(model.vjp(&fwd, &v)))
    });
}

fn bench_etch(c: &mut Criterion) {
    let n = 36;
    let proj = EtchProjection::new(25.0);
    let intensity = Array2::from_fn(n, n, |r, cc| ((r * cc) as f64 * 0.001).min(1.0));
    let eta = Array2::filled(n, n, 0.5);
    c.bench_function("etch_project_36x36", |b| {
        b.iter(|| black_box(proj.project_image(&intensity, &eta)))
    });
}

fn bench_eole(c: &mut Criterion) {
    let field = EoleField::new(36, 40, 0.05, EoleParams::default());
    let xi = vec![0.7; field.terms()];
    c.bench_function("eole_realise_36x40", |b| {
        b.iter(|| black_box(field.realise(&xi, 0.02)))
    });
    c.bench_function("eole_build_36x40", |b| {
        b.iter(|| black_box(EoleField::new(36, 40, 0.05, EoleParams::default())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fft, bench_litho, bench_etch, bench_eole
}
criterion_main!(benches);
