//! Benchmarks of the FDFD linear-algebra core: operator assembly, banded
//! LU factorisation, triangular solves, and the BiCGSTAB comparison.

use boson_fdfd::grid::SimGrid;
use boson_fdfd::operator::{assemble_banded, assemble_csr, scale_source};
use boson_fdfd::pml::SFactors;
use boson_fdfd::sim::{CornerContext, SimWorkspace, SolverStrategy};
use boson_num::banded::reference;
use boson_num::{Array2, Complex64};
use boson_sparse::{bicgstab, BicgstabOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup(n: usize) -> (SimGrid, SFactors, Array2<f64>, f64) {
    let grid = SimGrid::new(n, n, 0.05, 10);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let s = SFactors::new(&grid, omega);
    let eps = Array2::from_fn(
        n,
        n,
        |iy, _| {
            if iy.abs_diff(n / 2) < 5 {
                12.11
            } else {
                1.0
            }
        },
    );
    (grid, s, eps, omega)
}

fn bench_assembly(c: &mut Criterion) {
    let (grid, s, eps, omega) = setup(64);
    c.bench_function("assemble_banded_64x64", |b| {
        b.iter(|| black_box(assemble_banded(&grid, &s, &eps, omega)))
    });
}

fn bench_factor_and_solve(c: &mut Criterion) {
    let (grid, s, eps, omega) = setup(64);
    c.bench_function("banded_lu_factor_64x64", |b| {
        b.iter(|| {
            let a = assemble_banded(&grid, &s, &eps, omega);
            black_box(a.factor().unwrap())
        })
    });
    let lu = assemble_banded(&grid, &s, &eps, omega).factor().unwrap();
    let rhs: Vec<Complex64> = (0..grid.n())
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), 0.0))
        .collect();
    c.bench_function("banded_lu_solve_64x64", |b| {
        b.iter(|| black_box(lu.solve_vec(&rhs)))
    });
    c.bench_function("banded_lu_solve_transpose_64x64", |b| {
        b.iter(|| black_box(lu.solve_transpose_vec(&rhs)))
    });
}

/// The acceptance benchmark of the zero-allocation pipeline: one full
/// variation-corner loop (four permittivities, each factored once and
/// solved forward + adjoint) through
///
/// * `naive_alloc_per_call` — the seed's path: fresh `SFactors`, fresh
///   band allocation, the scalar `reference` kernel, per-call RHS
///   vectors; vs
/// * `workspace_pipeline` — cached `SFactors`, reused band/factor/RHS
///   buffers and the vectorised kernels via `SimWorkspace`.
///
/// `scripts/bench.sh` extracts the two medians into `BENCH_solver.json`
/// and reports the speedup (target ≥ 1.5×).
fn bench_corner_loop(c: &mut Criterion) {
    let (grid, _, eps0, omega) = setup(64);
    // Four corner permittivities (temperature-like diagonal shifts).
    let corners: Vec<Array2<f64>> = (0..4)
        .map(|k| eps0.map(|&e| if e > 1.0 { e + 0.05 * k as f64 } else { e }))
        .collect();
    let mut jz = vec![Complex64::ZERO; grid.n()];
    for iy in 27..37 {
        jz[grid.idx(14, iy)] = Complex64::ONE;
    }
    let g: Vec<Complex64> = (0..grid.n())
        .map(|k| Complex64::new((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
        .collect();

    let mut group = c.benchmark_group("corner_loop");
    group.sample_size(10);
    group.bench_function("naive_alloc_per_call", |b| {
        b.iter(|| {
            let mut acc = Complex64::ZERO;
            for eps in &corners {
                let s = SFactors::new(&grid, omega);
                let a = assemble_banded(&grid, &s, eps, omega);
                let lu = reference::factor(a).unwrap();
                let mut fwd = scale_source(&grid, &s, omega, &jz);
                reference::solve(&lu, &mut fwd);
                let mut adj = g.to_vec();
                reference::solve(&lu, &mut adj);
                acc += fwd[grid.n() / 2] + adj[grid.n() / 2];
            }
            black_box(acc)
        })
    });
    group.bench_function("workspace_pipeline", |b| {
        let mut ws = SimWorkspace::new();
        let mut fwd = Vec::new();
        let mut adj = vec![Complex64::ZERO; grid.n()];
        b.iter(|| {
            let mut acc = Complex64::ZERO;
            for eps in &corners {
                ws.factor(grid, omega, eps).unwrap();
                ws.solve_current_into(&jz, &mut fwd);
                adj.copy_from_slice(&g);
                ws.solve_adjoint_in_place(&mut adj);
                acc += fwd[grid.n() / 2] + adj[grid.n() / 2];
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Criterion sweep behind the [`boson_num::banded::RHS_BLOCK`] choice:
/// solve a 64-column batch (a multi-wavelength-sweep shape) with various
/// RHS block sizes. Columns are independent, so every block size is
/// bit-identical — only the cache behaviour differs.
fn bench_rhs_blocking(c: &mut Criterion) {
    let (grid, s, eps, omega) = setup(64);
    let lu = assemble_banded(&grid, &s, &eps, omega).factor().unwrap();
    let n = grid.n();
    let nrhs = 64;
    let b0: Vec<Complex64> = (0..n * nrhs)
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.003).cos()))
        .collect();
    let mut group = c.benchmark_group("solve_many_rhs_blocking");
    group.sample_size(10);
    for block in [4usize, 8, 16, 32, 64] {
        group.bench_function(&format!("block_{block}"), |bench| {
            let mut b = b0.clone();
            bench.iter(|| {
                b.copy_from_slice(&b0);
                lu.solve_many_blocked(&mut b, nrhs, block);
                black_box(b[n / 2])
            })
        });
    }
    group.finish();
}

/// Micro view of the tentpole: one perturbed-corner forward+adjoint pair
/// solved by a fresh direct factorisation vs the nominal-factor-
/// preconditioned iterative path (per-corner, no batching — the batched
/// sweep is measured end-to-end in `corner_scaling`).
fn bench_corner_solve(c: &mut Criterion) {
    let (grid, _, eps0, omega) = setup(64);
    let nominal = eps0.clone();
    let corner_eps = eps0.map(|&e| if e > 1.0 { e + 0.04 } else { e });
    let g: Vec<Complex64> = (0..grid.n())
        .map(|k| Complex64::new((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
        .collect();
    let mut group = c.benchmark_group("corner_solve");
    group.sample_size(10);
    group.bench_function("direct_refactor", |b| {
        let mut ws = SimWorkspace::new();
        let mut x = g.clone();
        b.iter(|| {
            ws.prepare_corner(grid, omega, &corner_eps, SolverStrategy::Direct, None)
                .unwrap();
            x.copy_from_slice(&g);
            ws.solve_block(&mut x, 1).unwrap();
            black_box(x[grid.n() / 2])
        })
    });
    group.bench_function("nominal_precond_iterative", |b| {
        let mut ws = SimWorkspace::new();
        let mut x = g.clone();
        let mut epoch = 0u64;
        b.iter(|| {
            // A fresh epoch each round so the nominal factorisation cost
            // is included, exactly like the direct side.
            epoch += 1;
            let ctx = CornerContext {
                nominal_eps: &nominal,
                epoch,
                is_nominal: false,
                force_direct: false,
            };
            ws.prepare_corner(
                grid,
                omega,
                &corner_eps,
                SolverStrategy::preconditioned_iterative(),
                Some(&ctx),
            )
            .unwrap();
            x.copy_from_slice(&g);
            ws.solve_block(&mut x, 1).unwrap();
            black_box(x[grid.n() / 2])
        })
    });
    group.finish();
}

fn bench_bicgstab(c: &mut Criterion) {
    // Iterative comparison on a small, well-conditioned system: a lossy
    // variant of the operator (adds imaginary diagonal so the Krylov
    // method converges quickly).
    let (grid, s, eps, omega) = setup(32);
    let a = assemble_csr(&grid, &s, &eps.map(|&e| e), omega);
    let n = grid.n();
    let mut coo = boson_sparse::CooMatrix::new(n, n);
    for i in 0..n {
        for j in i.saturating_sub(1)..(i + 2).min(n) {
            let v = a.get(i, j);
            if v != Complex64::ZERO {
                coo.push(i, j, v);
            }
        }
        coo.push(i, i, Complex64::new(0.0, 50.0));
    }
    let lossy = coo.to_csr();
    let rhs = vec![Complex64::ONE; n];
    c.bench_function("bicgstab_lossy_32x32", |b| {
        b.iter(|| {
            black_box(
                bicgstab(
                    &lossy,
                    &rhs,
                    &BicgstabOptions {
                        tol: 1e-8,
                        max_iter: 2000,
                        jacobi_precondition: true,
                    },
                )
                .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_assembly, bench_factor_and_solve, bench_corner_loop, bench_rhs_blocking,
        bench_corner_solve, bench_bicgstab
}
criterion_main!(benches);
