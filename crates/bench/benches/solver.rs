//! Benchmarks of the FDFD linear-algebra core: operator assembly, banded
//! LU factorisation, triangular solves, and the BiCGSTAB comparison.

use boson_fdfd::grid::SimGrid;
use boson_fdfd::operator::{assemble_banded, assemble_csr};
use boson_fdfd::pml::SFactors;
use boson_num::{Array2, Complex64};
use boson_sparse::{bicgstab, BicgstabOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup(n: usize) -> (SimGrid, SFactors, Array2<f64>, f64) {
    let grid = SimGrid::new(n, n, 0.05, 10);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let s = SFactors::new(&grid, omega);
    let eps = Array2::from_fn(n, n, |iy, _| {
        if iy.abs_diff(n / 2) < 5 {
            12.11
        } else {
            1.0
        }
    });
    (grid, s, eps, omega)
}

fn bench_assembly(c: &mut Criterion) {
    let (grid, s, eps, omega) = setup(64);
    c.bench_function("assemble_banded_64x64", |b| {
        b.iter(|| black_box(assemble_banded(&grid, &s, &eps, omega)))
    });
}

fn bench_factor_and_solve(c: &mut Criterion) {
    let (grid, s, eps, omega) = setup(64);
    c.bench_function("banded_lu_factor_64x64", |b| {
        b.iter(|| {
            let a = assemble_banded(&grid, &s, &eps, omega);
            black_box(a.factor().unwrap())
        })
    });
    let lu = assemble_banded(&grid, &s, &eps, omega).factor().unwrap();
    let rhs: Vec<Complex64> = (0..grid.n())
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), 0.0))
        .collect();
    c.bench_function("banded_lu_solve_64x64", |b| {
        b.iter(|| black_box(lu.solve_vec(&rhs)))
    });
    c.bench_function("banded_lu_solve_transpose_64x64", |b| {
        b.iter(|| black_box(lu.solve_transpose_vec(&rhs)))
    });
}

fn bench_bicgstab(c: &mut Criterion) {
    // Iterative comparison on a small, well-conditioned system: a lossy
    // variant of the operator (adds imaginary diagonal so the Krylov
    // method converges quickly).
    let (grid, s, eps, omega) = setup(32);
    let a = assemble_csr(&grid, &s, &eps.map(|&e| e), omega);
    let n = grid.n();
    let mut coo = boson_sparse::CooMatrix::new(n, n);
    for i in 0..n {
        for j in i.saturating_sub(1)..(i + 2).min(n) {
            let v = a.get(i, j);
            if v != Complex64::ZERO {
                coo.push(i, j, v);
            }
        }
        coo.push(i, i, Complex64::new(0.0, 50.0));
    }
    let lossy = coo.to_csr();
    let rhs = vec![Complex64::ONE; n];
    c.bench_function("bicgstab_lossy_32x32", |b| {
        b.iter(|| {
            black_box(
                bicgstab(
                    &lossy,
                    &rhs,
                    &BicgstabOptions {
                        tol: 1e-8,
                        max_iter: 2000,
                        jacobi_precondition: true,
                    },
                )
                .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_assembly, bench_factor_and_solve, bench_bicgstab
}
criterion_main!(benches);
