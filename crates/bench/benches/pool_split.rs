//! The `FUSED_SPLIT_MIN_COLS` tuning sweep: one fused lockstep batch at
//! growing packed-column counts, solved serially (`threads = 1`) and on
//! the pool (`threads = 4`), so the crossover where pooled dispatch
//! starts paying is recorded next to the threshold it justifies.
//!
//! The scoped-spawn generation paid a thread spawn + join per
//! preconditioner half-sweep, which needed ≥ 48 columns to amortise. A
//! pool dispatch costs a mutex hand-off and a condvar wake, moving the
//! crossover down to ~16 columns — the value of
//! `boson_fdfd::sim::FUSED_SPLIT_MIN_COLS`. Re-run this sweep (ideally on
//! a multi-core host) before retuning the constant.
//!
//! `scripts/bench.sh` extracts the 16-column pair into
//! `BENCH_solver.json` as `pool_split_16_serial_ns` /
//! `pool_split_16_pooled_ns`; on single-core hosts the pool has no
//! background workers and both sides measure the same serial sweep plus
//! the (near-zero) dispatch overhead.

use boson_fdfd::grid::SimGrid;
use boson_fdfd::sim::{SimWorkspace, SolverStrategy};
use boson_num::{Array2, Complex64};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup(grid: &SimGrid) -> (Array2<f64>, Vec<Complex64>) {
    let nominal = Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    });
    let g: Vec<Complex64> = (0..grid.n())
        .map(|k| Complex64::new((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
        .collect();
    (nominal, g)
}

fn bench_pool_split(c: &mut Criterion) {
    let grid = SimGrid::new(64, 56, 0.05, 8);
    let n = grid.n();
    let (nominal, g) = setup(&grid);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let omegas = [omega, omega * 1.02];

    let mut group = c.benchmark_group("pool_split");
    group.sample_size(10);
    // Column counts bracketing both generations' thresholds: well below
    // (8), at the pooled threshold (16), at the old scoped-spawn
    // threshold (48), and beyond (96). Corners per ω = cols / 2.
    for cols in [8usize, 16, 48, 96] {
        let corners: Vec<Array2<f64>> = (1..=cols / 2)
            .map(|k| nominal.map(|&e| if e > 1.0 { e + 0.002 * k as f64 } else { e }))
            .collect();
        let mut rhs = vec![Complex64::ZERO; n * cols];
        for cc in rhs.chunks_mut(n) {
            cc.copy_from_slice(&g);
        }
        for (label, threads) in [("serial", 1usize), ("pooled", 4)] {
            let id = format!("cols{cols}_{label}");
            group.bench_function(&id, |b| {
                let mut ws = SimWorkspace::new();
                let mut x = vec![Complex64::ZERO; n * cols];
                let mut epoch = 0u64;
                let mut run = |ws: &mut SimWorkspace, x: &mut Vec<Complex64>| {
                    epoch += 1;
                    ws.fused_batch_begin(
                        grid,
                        &omegas,
                        &nominal,
                        epoch,
                        SolverStrategy::preconditioned_iterative(),
                    )
                    .unwrap();
                    for oi in 0..omegas.len() {
                        for eps in &corners {
                            ws.fused_batch_push(eps, oi);
                        }
                    }
                    x.fill(Complex64::ZERO);
                    ws.fused_batch_solve(&rhs, x, 1, false, threads);
                    x[n / 2]
                };
                run(&mut ws, &mut x); // warm-up: untimed
                b.iter(|| black_box(run(&mut ws, &mut x)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pool_split
}
criterion_main!(benches);
