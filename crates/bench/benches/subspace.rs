//! Adaptive corner-subspace scheduling benchmark: one broadband robust
//! iteration of the bending benchmark — fabrication model, EM forwards +
//! adjoints, chain backward, spectral aggregation — over the (27
//! fabrication corner × 3 wavelength) cross product, through
//!
//! * `full_sweep` — the fused production full sweep: all 81 (corner, ω)
//!   columns of the product, one lockstep batch; vs
//! * `adaptive` — the subspace-scheduled iteration: a warmed-up
//!   [`SubspaceScheduler`] plans the top-M active columns (M = 27 ≈ ⅓ of
//!   the product; the per-ω nominal columns always included), only those
//!   columns are solved and folded, and the scheduler's EMA update from
//!   the observed objectives/weights is **inside** the timed region —
//!   the measured iteration is the whole steady-state schedule step, not
//!   just the cheaper sweep.
//!
//! The spectral aggregation is `Mean` — the production default — so
//! every evaluated column carries gradient weight and both sides solve
//! one adjoint per forward: the adaptive saving is purely the column
//! count (81 → 27 forwards *and* adjoints). (Under `WorstCase` the full
//! sweep already drops the zero-weight ⅔ of its adjoints, so the
//! subspace saving there is forwards-only — real, but smaller; the
//! `fused_27corner_3wl` bench covers that regime.)
//!
//! `scripts/bench.sh` extracts the two medians into `BENCH_solver.json`
//! as `subspace_speedup` and gates the ratio ≥ 1.5×.

use boson_core::baselines::{levelset_param, standard_chain};
use boson_core::compiled::{CompiledProblem, CornerProductSolve, EvalScratch};
use boson_core::fabchain::{assemble_eps, grad_eps_to_rho};
use boson_core::objective::SpectralAggregation;
use boson_core::problem::bending;
use boson_core::subspace::{SubspaceConfig, SubspaceScheduler};
use boson_fab::{EtchProjection, SamplingStrategy, SpectralAxis, VariationSpace};
use boson_fdfd::sim::SolverStrategy;
use boson_num::Array2;
use boson_param::Parameterization;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const WAVELENGTHS: usize = 3;
const HALF_SPAN: f64 = 0.02;
/// Active columns of the adaptive schedule: ⅓ of the 81-column product.
const ACTIVE_M: usize = 27;

fn bench_subspace(c: &mut Criterion) {
    let problem = bending();
    let axis = SpectralAxis::around(HALF_SPAN, WAVELENGTHS);
    let spectral =
        CompiledProblem::compile_spectral(problem.clone(), axis).expect("spectral compile failed");
    let spec = problem.objective.clone();
    let chain = standard_chain(&problem);
    let space = VariationSpace {
        spectral: axis,
        ..VariationSpace::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let corners = space.corners(SamplingStrategy::CornerSweep, &mut rng);
    let nf = corners.len();
    let columns = nf * WAVELENGTHS;
    let nominal_idx = corners
        .iter()
        .position(|c| !c.is_varied())
        .expect("sweep includes the nominal corner");
    let param = levelset_param(&problem, false);
    let rho = param.forward(&param.theta_from_geometry(&problem.seed));
    let etch = EtchProjection::new(10.0);
    let agg = SpectralAggregation::Mean;
    let (dr, dc) = problem.design_shape;
    // `BOSON_THREADS` overrides the sweep-split width (the bench crate's
    // standard knob); default: all cores, like a production run.
    let threads = std::env::var("BOSON_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |v| v.get()));
    // ω-major product metadata: column oi·nf + f is corner f at ω oi.
    let forced: Vec<bool> = (0..columns).map(|ci| ci % nf == nominal_idx).collect();

    // One robust-iteration fan-out over the `active` columns, mirroring
    // the runner's subspace-aware batched path: fabrication model once
    // per live corner, one fused lockstep batch over the active columns,
    // masked spectral fold, one ω-folded chain VJP per live corner.
    // Returns the robust objective and the (column, objective, weight)
    // observations that feed the scheduler.
    let iterate = |active: &[bool],
                   epoch: u64,
                   scratch: &mut EvalScratch,
                   observations: &mut Vec<(usize, f64, f64)>|
     -> f64 {
        observations.clear();
        let live: Vec<usize> = (0..nf)
            .filter(|&f| (0..WAVELENGTHS).any(|oi| active[oi * nf + f]))
            .collect();
        let fwds: Vec<_> = live
            .iter()
            .map(|&f| chain.forward_with_etch(&rho, &corners[f], false, etch))
            .collect();
        let epss_live: Vec<Array2<f64>> = live
            .iter()
            .zip(&fwds)
            .map(|(&f, fwd)| {
                assemble_eps(
                    &problem.background_solid,
                    problem.design_origin,
                    &fwd.rho_fab,
                    corners[f].temperature,
                )
            })
            .collect();
        let mut sel: Vec<(usize, usize)> = Vec::with_capacity(columns);
        let mut pos_of = vec![usize::MAX; WAVELENGTHS * live.len()];
        for oi in 0..WAVELENGTHS {
            for (li, &f) in live.iter().enumerate() {
                if active[oi * nf + f] {
                    pos_of[oi * live.len() + li] = sel.len();
                    sel.push((oi, li));
                }
            }
        }
        let epss: Vec<Array2<f64>> = sel.iter().map(|&(_, li)| epss_live[li].clone()).collect();
        let omega_idx: Vec<usize> = sel.iter().map(|&(oi, _)| oi).collect();
        let is_nominal: Vec<bool> = sel.iter().map(|&(_, li)| live[li] == nominal_idx).collect();
        let fab_idx: Vec<usize> = sel.iter().map(|&(_, li)| li).collect();
        let force_direct = vec![false; sel.len()];
        let set = CornerProductSolve {
            strategy: SolverStrategy::preconditioned_iterative(),
            nominal_eps: &epss_live[live
                .iter()
                .position(|&f| f == nominal_idx)
                .expect("nominal corner is always live")],
            epoch,
            omega_idx: &omega_idx,
            is_nominal: &is_nominal,
            force_direct: &force_direct,
            threads,
            skip_zero_weight_adjoints: Some((agg, &fab_idx)),
            recycle: None,
        };
        let evals = spectral
            .evaluate_corner_product(&epss, true, &spec, scratch, &set)
            .expect("subspace sweep failed");
        // Masked spectral fold + one VJP per live corner.
        let w = 1.0 / live.len() as f64;
        let mut values = [0.0; WAVELENGTHS];
        let mut omask = [false; WAVELENGTHS];
        let mut sweights = [0.0; WAVELENGTHS];
        let mut obj = 0.0;
        let mut v_fab = Array2::<f64>::zeros(dr, dc);
        for (li, &f) in live.iter().enumerate() {
            for oi in 0..WAVELENGTHS {
                let pos = pos_of[oi * live.len() + li];
                omask[oi] = pos != usize::MAX;
                values[oi] = if omask[oi] { evals[pos].objective } else { 0.0 };
            }
            obj += w * agg.aggregate_masked(&values, &omask);
            agg.weights_into_masked(&values, &omask, &mut sweights);
            let mut seed = Array2::<f64>::zeros(dr, dc);
            for oi in 0..WAVELENGTHS {
                let wk = sweights[oi];
                if wk != 0.0 {
                    let v_rho = grad_eps_to_rho(
                        evals[pos_of[oi * live.len() + li]]
                            .grad_eps
                            .as_ref()
                            .expect("weighted entry carries a gradient"),
                        problem.design_origin,
                        problem.design_shape,
                        corners[f].temperature,
                    );
                    for (dst, src) in seed.as_mut_slice().iter_mut().zip(v_rho.as_slice()) {
                        *dst += wk * src;
                    }
                }
                if omask[oi] {
                    observations.push((oi * nf + f, values[oi], sweights[oi]));
                }
            }
            let v_mask = chain.vjp_mask_with_etch(&fwds[li], &seed, etch);
            for (dst, src) in v_fab.as_mut_slice().iter_mut().zip(v_mask.as_slice()) {
                *dst += w * src;
            }
        }
        obj + v_fab[(0, 0)]
    };

    let mut group = c.benchmark_group("subspace_27corner_3wl");
    group.sample_size(10);

    group.bench_function("full_sweep", |b| {
        let mut scratch = EvalScratch::new();
        let mut observations = Vec::new();
        let all = vec![true; columns];
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            black_box(iterate(&all, epoch, &mut scratch, &mut observations))
        })
    });

    group.bench_function("adaptive", |b| {
        let mut scratch = EvalScratch::new();
        let mut observations = Vec::new();
        // Steady state: one full-sweep observation warms the EMAs
        // (outside the timed region, where a real run pays it once per
        // refresh epoch), then every timed iteration plans, solves and
        // records a partial schedule.
        let mut scheduler = SubspaceScheduler::new(
            columns,
            SubspaceConfig {
                refresh_every: usize::MAX,
                ..SubspaceConfig::with_active_columns(ACTIVE_M)
            },
        );
        let all = vec![true; columns];
        iterate(&all, 0, &mut scratch, &mut observations);
        for &(ci, obj, wt) in &observations {
            scheduler.record(ci, obj, wt);
        }
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            let plan = scheduler.plan(epoch as usize, &forced);
            assert!(!plan.refresh, "timed iterations must be partial");
            let obj = iterate(&plan.active, epoch, &mut scratch, &mut observations);
            for &(ci, o, wt) in &observations {
                scheduler.record(ci, o, wt);
            }
            black_box(obj)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_subspace
}
criterion_main!(benches);
