//! Broadband robust-iteration benchmark: one (27 fabrication corner × 3
//! wavelength) sweep of the bending benchmark with gradients, through
//!
//! * `naive_recompile` — the pre-spectral idiom: re-compile the problem
//!   at every wavelength (modes + launched-power calibration) and factor
//!   every corner directly, every iteration; vs
//! * `batched` — the spectral pipeline: per-ω calibration compiled
//!   **once** (outside the timed loop, where a real run pays it once per
//!   design), then per iteration one nominal factorisation and one
//!   batched preconditioned-iterative lockstep sweep per wavelength,
//!   with the workspace's per-ω slots keeping all three stencil caches
//!   and nominal factors resident.
//!
//! `scripts/bench.sh` extracts the two medians into `BENCH_solver.json`
//! as `spectral_batch_speedup` and gates the ratio ≥ 2×.

use boson_core::baselines::{levelset_param, standard_chain};
use boson_core::compiled::{CompiledProblem, CornerSetSolve, EvalScratch};
use boson_core::fabchain::assemble_eps;
use boson_core::problem::bending;
use boson_fab::{SamplingStrategy, SpectralAxis, VariationSpace};
use boson_num::Array2;
use boson_param::Parameterization;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const WAVELENGTHS: usize = 3;
const HALF_SPAN: f64 = 0.02;

fn bench_broadband(c: &mut Criterion) {
    let problem = bending();
    let axis = SpectralAxis::around(HALF_SPAN, WAVELENGTHS);
    let spectral =
        CompiledProblem::compile_spectral(problem.clone(), axis).expect("spectral compile failed");
    let spec = problem.objective.clone();
    let chain = standard_chain(&problem);
    let space = VariationSpace {
        spectral: axis,
        ..VariationSpace::default()
    };
    // The 27 fabrication corners of the exhaustive sweep, materialised to
    // permittivity maps once (they are ω-independent; both sides solve
    // the identical systems).
    let mut rng = StdRng::seed_from_u64(7);
    let corners = space.corners(SamplingStrategy::CornerSweep, &mut rng);
    let nominal_idx = corners
        .iter()
        .position(|c| !c.is_varied())
        .expect("sweep includes the nominal corner");
    let param = levelset_param(&problem, false);
    let rho = param.forward(&param.theta_from_geometry(&problem.seed));
    let epss: Vec<Array2<f64>> = corners
        .iter()
        .map(|corner| {
            let fwd = chain.forward(&rho, corner, false);
            assemble_eps(
                &problem.background_solid,
                problem.design_origin,
                &fwd.rho_fab,
                corner.temperature,
            )
        })
        .collect();
    let force_direct = vec![false; epss.len()];
    let omegas = axis.omegas(problem.omega);

    let mut group = c.benchmark_group("broadband_27corner_3wl");
    group.sample_size(10);

    group.bench_function("batched", |b| {
        let mut scratch = EvalScratch::new();
        let mut epoch = 0u64;
        b.iter(|| {
            // A fresh epoch each round: every wavelength re-factors its
            // nominal operator, exactly like a real optimisation
            // iteration.
            epoch += 1;
            let mut acc = 0.0;
            for oi in 0..WAVELENGTHS {
                let set = CornerSetSolve {
                    tol: 1e-6,
                    max_iters: 24,
                    nominal_eps: &epss[nominal_idx],
                    epoch,
                    nominal_idx: Some(nominal_idx),
                    force_direct: &force_direct,
                    omega_idx: oi,
                };
                let evals = spectral
                    .evaluate_corner_set(&epss, true, &spec, &mut scratch, &set)
                    .expect("batched sweep failed");
                acc += evals.iter().map(|e| e.objective).sum::<f64>();
            }
            black_box(acc)
        })
    });

    group.bench_function("naive_recompile", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &omega in &omegas {
                // The pre-spectral wavelength loop: clone, re-target ω,
                // full recompile (modes + calibration), then one direct
                // factorisation per corner.
                let mut p = problem.clone();
                p.omega = omega;
                let compiled = CompiledProblem::compile(p).expect("recompile failed");
                for eps in &epss {
                    let ev = compiled
                        .evaluate_eps(eps, true)
                        .expect("corner evaluation failed");
                    acc += ev.objective;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_broadband
}
criterion_main!(benches);
