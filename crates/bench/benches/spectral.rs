//! Broadband robust-iteration benchmark: one (27 fabrication corner × 3
//! wavelength) sweep of the bending benchmark with gradients, through
//!
//! * `naive_recompile` — the pre-spectral idiom: re-compile the problem
//!   at every wavelength (modes + launched-power calibration) and factor
//!   every corner directly, every iteration; vs
//! * `batched` — the spectral pipeline: per-ω calibration compiled
//!   **once** (outside the timed loop, where a real run pays it once per
//!   design), then per iteration one nominal factorisation and one
//!   batched preconditioned-iterative lockstep sweep per wavelength,
//!   with the workspace's per-ω slots keeping all three stencil caches
//!   and nominal factors resident.
//!
//! `scripts/bench.sh` extracts the two medians into `BENCH_solver.json`
//! as `spectral_batch_speedup` and gates the ratio ≥ 2×.

use boson_core::baselines::{levelset_param, standard_chain};
use boson_core::compiled::{CompiledProblem, CornerProductSolve, CornerSetSolve, EvalScratch};
use boson_core::fabchain::{assemble_eps, grad_eps_to_rho};
use boson_core::objective::SpectralAggregation;
use boson_core::problem::bending;
use boson_fab::{EtchProjection, SamplingStrategy, SpectralAxis, VariationSpace};
use boson_fdfd::sim::SolverStrategy;
use boson_num::Array2;
use boson_param::Parameterization;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const WAVELENGTHS: usize = 3;
const HALF_SPAN: f64 = 0.02;

fn bench_broadband(c: &mut Criterion) {
    let problem = bending();
    let axis = SpectralAxis::around(HALF_SPAN, WAVELENGTHS);
    let spectral =
        CompiledProblem::compile_spectral(problem.clone(), axis).expect("spectral compile failed");
    let spec = problem.objective.clone();
    let chain = standard_chain(&problem);
    let space = VariationSpace {
        spectral: axis,
        ..VariationSpace::default()
    };
    // The 27 fabrication corners of the exhaustive sweep, materialised to
    // permittivity maps once (they are ω-independent; both sides solve
    // the identical systems).
    let mut rng = StdRng::seed_from_u64(7);
    let corners = space.corners(SamplingStrategy::CornerSweep, &mut rng);
    let nominal_idx = corners
        .iter()
        .position(|c| !c.is_varied())
        .expect("sweep includes the nominal corner");
    let param = levelset_param(&problem, false);
    let rho = param.forward(&param.theta_from_geometry(&problem.seed));
    let epss: Vec<Array2<f64>> = corners
        .iter()
        .map(|corner| {
            let fwd = chain.forward(&rho, corner, false);
            assemble_eps(
                &problem.background_solid,
                problem.design_origin,
                &fwd.rho_fab,
                corner.temperature,
            )
        })
        .collect();
    let force_direct = vec![false; epss.len()];
    let omegas = axis.omegas(problem.omega);

    let mut group = c.benchmark_group("broadband_27corner_3wl");
    group.sample_size(10);

    group.bench_function("batched", |b| {
        let mut scratch = EvalScratch::new();
        let mut epoch = 0u64;
        b.iter(|| {
            // A fresh epoch each round: every wavelength re-factors its
            // nominal operator, exactly like a real optimisation
            // iteration.
            epoch += 1;
            let mut acc = 0.0;
            for oi in 0..WAVELENGTHS {
                let set = CornerSetSolve {
                    strategy: SolverStrategy::preconditioned_iterative(),
                    nominal_eps: &epss[nominal_idx],
                    epoch,
                    nominal_idx: Some(nominal_idx),
                    force_direct: &force_direct,
                    omega_idx: oi,
                };
                let evals = spectral
                    .evaluate_corner_set(&epss, true, &spec, &mut scratch, &set)
                    .expect("batched sweep failed");
                acc += evals.iter().map(|e| e.objective).sum::<f64>();
            }
            black_box(acc)
        })
    });

    group.bench_function("naive_recompile", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &omega in &omegas {
                // The pre-spectral wavelength loop: clone, re-target ω,
                // full recompile (modes + calibration), then one direct
                // factorisation per corner.
                let mut p = problem.clone();
                p.omega = omega;
                let compiled = CompiledProblem::compile(p).expect("recompile failed");
                for eps in &epss {
                    let ev = compiled
                        .evaluate_eps(eps, true)
                        .expect("corner evaluation failed");
                    acc += ev.objective;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// One full broadband worst-case robust-iteration fan-out — fabrication
/// model, EM forwards + adjoints, chain backward, spectral aggregation —
/// through the two spectral-sweep generations:
///
/// * `per_omega` — the pre-fusion production path: the (ω-independent)
///   fabrication model runs per (corner, ω) product entry, the EM solves
///   advance in one batch **per ω** (`evaluate_corner_set` × K), every
///   entry's adjoints are solved (aggregation weights aren't known until
///   after the sweep), and one fabrication VJP runs per product entry;
/// * `fused` — the fused production path: one fabrication forward per
///   fabrication corner, **one** lockstep (corner × ω) batch with
///   per-column (per-ω) preconditioners, zero-weight adjoint solves
///   dropped (the fused batch sees every forward objective before its
///   adjoint phase), and one ω-folded fabrication VJP per corner.
///
/// `scripts/bench.sh` extracts the two medians into `BENCH_solver.json`
/// as `fused_batch_speedup` and gates the ratio ≥ 1.2×.
fn bench_fused(c: &mut Criterion) {
    let problem = bending();
    let axis = SpectralAxis::around(HALF_SPAN, WAVELENGTHS);
    let spectral =
        CompiledProblem::compile_spectral(problem.clone(), axis).expect("spectral compile failed");
    let spec = problem.objective.clone();
    let chain = standard_chain(&problem);
    let space = VariationSpace {
        spectral: axis,
        ..VariationSpace::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let corners = space.corners(SamplingStrategy::CornerSweep, &mut rng);
    let nf = corners.len();
    let nominal_idx = corners
        .iter()
        .position(|c| !c.is_varied())
        .expect("sweep includes the nominal corner");
    let param = levelset_param(&problem, false);
    let rho = param.forward(&param.theta_from_geometry(&problem.seed));
    let etch = EtchProjection::new(10.0);
    let agg = SpectralAggregation::WorstCase;
    let (dr, dc) = problem.design_shape;
    let w = 1.0 / nf as f64;
    let force_direct = vec![false; nf];

    let mut group = c.benchmark_group("fused_27corner_3wl");
    group.sample_size(10);

    group.bench_function("per_omega", |b| {
        let mut scratch = EvalScratch::new();
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            // Fabrication model per product entry (PR 3 ran the chain
            // once per (corner, ω) even though it is ω-independent).
            let fwds: Vec<_> = (0..WAVELENGTHS)
                .flat_map(|_| corners.iter())
                .map(|c| chain.forward_with_etch(&rho, c, false, etch))
                .collect();
            let epss: Vec<Array2<f64>> = fwds
                .iter()
                .zip((0..WAVELENGTHS).flat_map(|_| corners.iter()))
                .map(|(fwd, c)| {
                    assemble_eps(
                        &problem.background_solid,
                        problem.design_origin,
                        &fwd.rho_fab,
                        c.temperature,
                    )
                })
                .collect();
            // One batched sweep per ω.
            let mut evals = Vec::with_capacity(epss.len());
            for oi in 0..WAVELENGTHS {
                let set = CornerSetSolve {
                    strategy: SolverStrategy::preconditioned_iterative(),
                    nominal_eps: &epss[nominal_idx],
                    epoch,
                    nominal_idx: Some(nominal_idx),
                    force_direct: &force_direct,
                    omega_idx: oi,
                };
                evals.extend(
                    spectral
                        .evaluate_corner_set(
                            &epss[oi * nf..(oi + 1) * nf],
                            true,
                            &spec,
                            &mut scratch,
                            &set,
                        )
                        .expect("per-ω sweep failed"),
                );
            }
            // Chain backward per product entry, then the weighted sum.
            let v_masks: Vec<Array2<f64>> = evals
                .iter()
                .enumerate()
                .map(|(ci, ev)| {
                    let v_rho = grad_eps_to_rho(
                        ev.grad_eps.as_ref().expect("gradient requested"),
                        problem.design_origin,
                        problem.design_shape,
                        corners[ci % nf].temperature,
                    );
                    chain.vjp_mask_with_etch(&fwds[ci], &v_rho, etch)
                })
                .collect();
            let mut values = [0.0; WAVELENGTHS];
            let mut sweights = [0.0; WAVELENGTHS];
            let mut obj = 0.0;
            let mut v_fab = Array2::<f64>::zeros(dr, dc);
            for f in 0..nf {
                for oi in 0..WAVELENGTHS {
                    values[oi] = evals[oi * nf + f].objective;
                }
                obj += w * agg.aggregate(&values);
                agg.weights_into(&values, &mut sweights);
                for oi in 0..WAVELENGTHS {
                    let wk = w * sweights[oi];
                    if wk != 0.0 {
                        for (dst, src) in v_fab
                            .as_mut_slice()
                            .iter_mut()
                            .zip(v_masks[oi * nf + f].as_slice())
                        {
                            *dst += wk * src;
                        }
                    }
                }
            }
            black_box(obj + v_fab[(0, 0)])
        })
    });

    group.bench_function("fused", |b| {
        let threads = std::thread::available_parallelism().map_or(1, |v| v.get());
        let omega_idx: Vec<usize> = (0..WAVELENGTHS)
            .flat_map(|oi| std::iter::repeat_n(oi, nf))
            .collect();
        let is_nominal: Vec<bool> = (0..WAVELENGTHS)
            .flat_map(|_| (0..nf).map(|f| f == nominal_idx))
            .collect();
        let fab_idx: Vec<usize> = (0..WAVELENGTHS * nf).map(|ci| ci % nf).collect();
        let force_direct_prod = vec![false; WAVELENGTHS * nf];
        let mut scratch = EvalScratch::new();
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            // Fabrication model once per fabrication corner.
            let fwds: Vec<_> = corners
                .iter()
                .map(|c| chain.forward_with_etch(&rho, c, false, etch))
                .collect();
            let epss_fab: Vec<Array2<f64>> = fwds
                .iter()
                .zip(&corners)
                .map(|(fwd, c)| {
                    assemble_eps(
                        &problem.background_solid,
                        problem.design_origin,
                        &fwd.rho_fab,
                        c.temperature,
                    )
                })
                .collect();
            let epss: Vec<Array2<f64>> = (0..WAVELENGTHS)
                .flat_map(|_| epss_fab.iter().cloned())
                .collect();
            // ONE fused lockstep batch for the whole cross product.
            let set = CornerProductSolve {
                strategy: SolverStrategy::preconditioned_iterative(),
                nominal_eps: &epss_fab[nominal_idx],
                epoch,
                omega_idx: &omega_idx,
                is_nominal: &is_nominal,
                force_direct: &force_direct_prod,
                threads,
                skip_zero_weight_adjoints: Some((agg, &fab_idx)),
                recycle: None,
            };
            let evals = spectral
                .evaluate_corner_product(&epss, true, &spec, &mut scratch, &set)
                .expect("fused sweep failed");
            // ω-folded chain backward: one VJP per fabrication corner.
            let mut values = [0.0; WAVELENGTHS];
            let mut sweights = [0.0; WAVELENGTHS];
            let mut obj = 0.0;
            let mut v_fab = Array2::<f64>::zeros(dr, dc);
            for f in 0..nf {
                for oi in 0..WAVELENGTHS {
                    values[oi] = evals[oi * nf + f].objective;
                }
                obj += w * agg.aggregate(&values);
                agg.weights_into(&values, &mut sweights);
                let mut seed = Array2::<f64>::zeros(dr, dc);
                for oi in 0..WAVELENGTHS {
                    let wk = sweights[oi];
                    if wk != 0.0 {
                        let v_rho = grad_eps_to_rho(
                            evals[oi * nf + f]
                                .grad_eps
                                .as_ref()
                                .expect("weighted entry carries a gradient"),
                            problem.design_origin,
                            problem.design_shape,
                            corners[f].temperature,
                        );
                        for (dst, src) in seed.as_mut_slice().iter_mut().zip(v_rho.as_slice()) {
                            *dst += wk * src;
                        }
                    }
                }
                let v_mask = chain.vjp_mask_with_etch(&fwds[f], &seed, etch);
                for (dst, src) in v_fab.as_mut_slice().iter_mut().zip(v_mask.as_slice()) {
                    *dst += w * src;
                }
            }
            black_box(obj + v_fab[(0, 0)])
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_broadband, bench_fused
}
criterion_main!(benches);
