//! The parallel-multigrid acceptance benchmark: one 256×256
//! multigrid-preconditioned **fused** corner sweep — four perturbed
//! corners advancing in lockstep, each V-cycle + boundary-band
//! preconditioner application a per-column job — run serially
//! (`threads = 1`) and on four pool lanes (`threads = 4`).
//!
//! This is the split the scoped-spawn generation excluded outright
//! (`split = !mg`: the V-cycle's `MgScratch`/`BandScratch` pair was a
//! single workspace-owned instance). Per-lane `MgLane` scratch over the
//! shared immutable hierarchy makes the column chunks independent, and
//! the V-cycle's `O(n)`-per-column cost dwarfs the pool dispatch, so the
//! speedup should track the lane count on a multi-core host.
//!
//! `scripts/bench.sh` extracts the two medians into `BENCH_solver.json`
//! as `mg_parallel_serial_ns` / `mg_parallel_4workers_ns` and gates their
//! ratio as `mg_parallel_speedup` (target ≥ 2× with 4 workers) — on
//! hosts with ≥ 4 CPUs only; a single-core host runs every lane on the
//! caller's thread, so the gate degrades to reporting the measured ratio.

use boson_fdfd::grid::SimGrid;
use boson_fdfd::sim::{SimWorkspace, SolverStrategy};
use boson_num::{Array2, Complex64};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const N: usize = 256;

fn bench_mg_parallel(c: &mut Criterion) {
    // Same resolved regime as the large_grid acceptance bench: 0.02 µm
    // pitch ≈ 22 points per wavelength in silicon at λ = 1.55 µm.
    let grid = SimGrid::new(N, N, 0.02, 10);
    let n = grid.n();
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let omegas = [omega];
    let nominal = Array2::from_fn(
        N,
        N,
        |iy, _| {
            if iy.abs_diff(N / 2) < 5 {
                12.11
            } else {
                1.0
            }
        },
    );
    let corners: Vec<Array2<f64>> = (1..=4)
        .map(|k| nominal.map(|&e| if e > 1.0 { e + 0.01 * k as f64 } else { e }))
        .collect();
    let g: Vec<Complex64> = (0..n)
        .map(|k| Complex64::new((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
        .collect();
    let mut rhs = vec![Complex64::ZERO; n * corners.len()];
    for cc in rhs.chunks_mut(n) {
        cc.copy_from_slice(&g);
    }

    let mut group = c.benchmark_group("mg_parallel_256");
    // Three samples: a 256² fused MG sweep costs seconds per round, and
    // the gate compares medians of the same deterministic work.
    group.sample_size(3);
    for (label, threads) in [("fused_mg_serial", 1usize), ("fused_mg_4workers", 4)] {
        group.bench_function(label, |b| {
            let mut ws = SimWorkspace::new();
            let mut x = vec![Complex64::ZERO; n * corners.len()];
            let mut epoch = 0u64;
            let mut run = |ws: &mut SimWorkspace, x: &mut Vec<Complex64>| {
                // A fresh epoch each round so the per-epoch hierarchy
                // rebuild is included, as in a real optimisation sweep.
                epoch += 1;
                ws.fused_batch_begin(
                    grid,
                    &omegas,
                    &nominal,
                    epoch,
                    // Forced MG at any size; at 256² the auto-selection
                    // picks the same pair.
                    SolverStrategy::multigrid_iterative(),
                )
                .unwrap();
                for eps in &corners {
                    ws.fused_batch_push(eps, 0);
                }
                x.fill(Complex64::ZERO);
                ws.fused_batch_solve(&rhs, x, 1, false, threads);
                x[n / 2]
            };
            run(&mut ws, &mut x); // warm-up: untimed (sizes every buffer)
            b.iter(|| black_box(run(&mut ws, &mut x)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench_mg_parallel
}
criterion_main!(benches);
