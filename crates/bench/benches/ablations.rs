//! Ablation benches for the design choices documented in DESIGN.md:
//!
//! 1. **Symmetrised operator** — the adjoint shares the forward
//!    factorisation (1 factor + 2 solves) instead of factoring twice.
//! 2. **Abbe source count** — 5-point partially-coherent quadrature vs a
//!    single coherent kernel.
//! 3. **Litho corner caching** — kernels precomputed at model build vs
//!    rebuilt per image.

use boson_fdfd::grid::SimGrid;
use boson_fdfd::operator::assemble_banded;
use boson_fdfd::pml::SFactors;
use boson_litho::{LithoConfig, LithoCorner, LithoModel};
use boson_num::{Array2, Complex64};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_shared_factorisation(c: &mut Criterion) {
    let grid = SimGrid::new(50, 50, 0.05, 10);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let s = SFactors::new(&grid, omega);
    let eps = Array2::from_fn(
        50,
        50,
        |iy, _| if iy.abs_diff(25) < 4 { 12.11 } else { 1.0 },
    );
    let rhs: Vec<Complex64> = (0..grid.n())
        .map(|k| Complex64::new((k as f64 * 0.02).sin(), 0.1))
        .collect();

    let mut group = c.benchmark_group("adjoint_strategy");
    group.sample_size(10);
    // BOSON-1's way: factor once, solve forward + adjoint.
    group.bench_function("symmetric_shared_factor", |b| {
        b.iter(|| {
            let lu = assemble_banded(&grid, &s, &eps, omega).factor().unwrap();
            let fwd = lu.solve_vec(&rhs);
            let adj = lu.solve_vec(&rhs);
            black_box((fwd, adj))
        })
    });
    // The naive alternative: factor the operator twice.
    group.bench_function("naive_two_factorisations", |b| {
        b.iter(|| {
            let lu1 = assemble_banded(&grid, &s, &eps, omega).factor().unwrap();
            let fwd = lu1.solve_vec(&rhs);
            let lu2 = assemble_banded(&grid, &s, &eps, omega).factor().unwrap();
            let adj = lu2.solve_vec(&rhs);
            black_box((fwd, adj))
        })
    });
    group.finish();
}

fn bench_source_quadrature(c: &mut Criterion) {
    let n = 36;
    let mask = Array2::from_fn(n, n, |r, _| if r.abs_diff(n / 2) < 5 { 1.0 } else { 0.0 });
    let mut group = c.benchmark_group("abbe_source_points");
    group.sample_size(10);
    // σ = 0 degenerates all five source points to the pupil centre —
    // effectively coherent imaging at the same quadrature cost, so we
    // compare against the partially-coherent default.
    let coherent = LithoModel::new(
        n,
        n,
        0.05,
        LithoConfig {
            sigma: 0.0,
            ..LithoConfig::default()
        },
    );
    let partial = LithoModel::new(n, n, 0.05, LithoConfig::default());
    group.bench_function("coherent_sigma0", |b| {
        b.iter(|| black_box(coherent.aerial_image(&mask, LithoCorner::Nominal)))
    });
    group.bench_function("partially_coherent_5pt", |b| {
        b.iter(|| black_box(partial.aerial_image(&mask, LithoCorner::Nominal)))
    });
    group.finish();
}

fn bench_kernel_caching(c: &mut Criterion) {
    let n = 36;
    let mask = Array2::from_fn(n, n, |r, _| if r.abs_diff(n / 2) < 5 { 1.0 } else { 0.0 });
    let mut group = c.benchmark_group("litho_kernel_caching");
    group.sample_size(10);
    let cached = LithoModel::new(n, n, 0.05, LithoConfig::default());
    group.bench_function("cached_kernels", |b| {
        b.iter(|| black_box(cached.aerial_image(&mask, LithoCorner::Nominal)))
    });
    group.bench_function("rebuild_model_every_image", |b| {
        b.iter(|| {
            let model = LithoModel::new(n, n, 0.05, LithoConfig::default());
            black_box(model.aerial_image(&mask, LithoCorner::Nominal))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shared_factorisation,
    bench_source_quadrature,
    bench_kernel_caching
);
criterion_main!(benches);
