//! The large-grid acceptance benchmark: one perturbed-corner
//! forward+adjoint pair at 256×256 — past the banded-LU wall, where the
//! `O(n·b²)` factor (b = nx = 256) costs seconds — solved by
//!
//! * `direct_factor_solve` — the banded direct path: fresh factor plus
//!   forward and adjoint triangular sweeps; vs
//! * `multigrid_iterative` — the matrix-free geometric-multigrid
//!   V-cycle preconditioning the lockstep BiCGSTAB, hierarchy rebuilt
//!   from scratch each round (a fresh epoch, like the direct side).
//!
//! `scripts/bench.sh` extracts the two medians into `BENCH_solver.json`
//! as `large_grid_direct_ns` / `large_grid_multigrid_ns` and gates their
//! ratio as `large_grid_speedup` (target ≥ 3×).

use boson_fdfd::grid::SimGrid;
use boson_fdfd::sim::{CornerContext, SimWorkspace, SolverStrategy};
use boson_num::{Array2, Complex64};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const N: usize = 256;

fn setup() -> (SimGrid, Array2<f64>, Array2<f64>, f64) {
    // 0.02 µm pitch ≈ 22 points per wavelength in silicon at λ = 1.55 µm
    // — the resolved regime the multigrid preconditioner targets
    // (under-resolved grids miss the iterative budget and fall back).
    let grid = SimGrid::new(N, N, 0.02, 10);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let nominal = Array2::from_fn(
        N,
        N,
        |iy, _| {
            if iy.abs_diff(N / 2) < 5 {
                12.11
            } else {
                1.0
            }
        },
    );
    let corner = nominal.map(|&e| if e > 1.0 { e + 0.04 } else { e });
    (grid, nominal, corner, omega)
}

fn bench_large_grid(c: &mut Criterion) {
    let (grid, nominal, corner, omega) = setup();
    let g: Vec<Complex64> = (0..grid.n())
        .map(|k| Complex64::new((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
        .collect();
    let mut group = c.benchmark_group("large_grid_256");
    // Five samples keep the medians robust to scheduler noise; the
    // untimed warm-up pass before each `b.iter` sizes every buffer
    // (factor storage, hierarchy, Krylov scratch) so the first timed
    // sample is not a cold-allocation outlier. (The vendored criterion
    // shim has no warm-up API — warm-up is explicit here.)
    group.sample_size(5);
    group.bench_function("direct_factor_solve", |b| {
        let mut ws = SimWorkspace::new();
        let mut x = g.clone();
        let run = |ws: &mut SimWorkspace, x: &mut Vec<Complex64>| {
            ws.prepare_corner(grid, omega, &corner, SolverStrategy::Direct, None)
                .unwrap();
            x.copy_from_slice(&g);
            ws.solve_block(x, 1).unwrap();
            x.copy_from_slice(&g);
            ws.solve_block_transpose(x, 1).unwrap();
            x[grid.n() / 2]
        };
        run(&mut ws, &mut x); // warm-up: untimed
        b.iter(|| black_box(run(&mut ws, &mut x)))
    });
    group.bench_function("multigrid_iterative", |b| {
        let mut ws = SimWorkspace::new();
        let mut x = g.clone();
        let mut epoch = 0u64;
        let run = |ws: &mut SimWorkspace, x: &mut Vec<Complex64>, epoch: &mut u64| {
            // A fresh epoch each round so the hierarchy rebuild cost is
            // included, exactly like the direct side's factorisation.
            *epoch += 1;
            let ctx = CornerContext {
                nominal_eps: &nominal,
                epoch: *epoch,
                is_nominal: false,
                force_direct: false,
            };
            ws.prepare_corner(
                grid,
                omega,
                &corner,
                SolverStrategy::preconditioned_iterative(),
                Some(&ctx),
            )
            .unwrap();
            x.copy_from_slice(&g);
            ws.solve_block(x, 1).unwrap();
            x.copy_from_slice(&g);
            ws.solve_block_transpose(x, 1).unwrap();
            x[grid.n() / 2]
        };
        run(&mut ws, &mut x, &mut epoch); // warm-up: untimed
        b.iter(|| black_box(run(&mut ws, &mut x, &mut epoch)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench_large_grid
}
criterion_main!(benches);
