//! Temporal-axis benchmark: cross-iteration Krylov recycling + lagged
//! nominal factors over the steady-state robust loop. One broadband
//! robust iteration of the bending benchmark — fabrication model, EM
//! forwards + adjoints, chain backward, spectral aggregation — over the
//! full (27 fabrication corner × 3 wavelength) cross product, with the
//! design drifting a little every iteration (an optimiser step), through
//!
//! * `baseline` — the PR 6 pipeline: every epoch refactors each ω's
//!   nominal operator eagerly and every column's BiCGSTAB starts from
//!   its ω's warm start alone; vs
//! * `recycled` — [`RecycleConfig::enabled`]: each column restarts from
//!   its own remembered previous solution (when its residual beats the
//!   shared warm start), per-(corner, ω)-column deflation stores
//!   harvested from the previous iteration's converged solves
//!   Galerkin-project the start, and the lagged-factor policy
//!   keeps each ω's banded factorisation until diagonal drift, age, or a
//!   budget miss trips a rebuild.
//!
//! The timed region is the whole steady-state robust iteration — the
//! design step, fabrication forwards, the fused product solve (forward +
//! adjoint), and the spectral/chain fold — so the measured ratio is the
//! end-to-end iteration speedup, not just the solver's.
//!
//! `scripts/bench.sh` extracts the two medians into `BENCH_solver.json`
//! as `recycle_speedup` and gates the ratio ≥ 1.5×.

use boson_core::baselines::{levelset_param, standard_chain};
use boson_core::compiled::{CompiledProblem, CornerProductSolve, EvalScratch, RecycleConfig};
use boson_core::fabchain::{assemble_eps, grad_eps_to_rho};
use boson_core::objective::SpectralAggregation;
use boson_core::problem::bending;
use boson_fab::{EtchProjection, SamplingStrategy, SpectralAxis, VariationSpace};
use boson_fdfd::sim::SolverStrategy;
use boson_num::Array2;
use boson_param::Parameterization;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const WAVELENGTHS: usize = 3;
const HALF_SPAN: f64 = 0.02;
/// Per-iteration design-drift amplitude — a small optimiser step, well
/// inside [`RecycleConfig::enabled`]'s `drift_tol`, like the steady
/// state of a converging robust run.
const STEP: f64 = 0.004;

fn bench_recycle(c: &mut Criterion) {
    let problem = bending();
    let axis = SpectralAxis::around(HALF_SPAN, WAVELENGTHS);
    let spectral =
        CompiledProblem::compile_spectral(problem.clone(), axis).expect("spectral compile failed");
    let spec = problem.objective.clone();
    let chain = standard_chain(&problem);
    let space = VariationSpace {
        spectral: axis,
        ..VariationSpace::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let corners = space.corners(SamplingStrategy::CornerSweep, &mut rng);
    let nf = corners.len();
    let columns = nf * WAVELENGTHS;
    let nominal_idx = corners
        .iter()
        .position(|c| !c.is_varied())
        .expect("sweep includes the nominal corner");
    let param = levelset_param(&problem, false);
    let rho0 = param.forward(&param.theta_from_geometry(&problem.seed));
    let etch = EtchProjection::new(10.0);
    let agg = SpectralAggregation::Mean;
    let (dr, dc) = problem.design_shape;
    let threads = std::env::var("BOSON_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |v| v.get()));
    // Every column of the full ω-major product, in order — the stable
    // recycle keys (column `oi·nf + f` is corner `f` at ω `oi`).
    let global_cols: Vec<usize> = (0..columns).collect();

    // One full-sweep robust iteration at `epoch` on design `rho_now`,
    // mirroring the runner's batched path. `recycle` switches the fused
    // batch onto the per-column deflation stores the scratch owns.
    let iterate =
        |rho_now: &Array2<f64>, epoch: u64, scratch: &mut EvalScratch, recycle: bool| -> f64 {
            let fwds: Vec<_> = corners[..nf]
                .iter()
                .map(|corner| chain.forward_with_etch(rho_now, corner, false, etch))
                .collect();
            let epss_fab: Vec<Array2<f64>> = fwds
                .iter()
                .enumerate()
                .map(|(f, fwd)| {
                    assemble_eps(
                        &problem.background_solid,
                        problem.design_origin,
                        &fwd.rho_fab,
                        corners[f].temperature,
                    )
                })
                .collect();
            let epss: Vec<Array2<f64>> = (0..columns).map(|ci| epss_fab[ci % nf].clone()).collect();
            let omega_idx: Vec<usize> = (0..columns).map(|ci| ci / nf).collect();
            let is_nominal: Vec<bool> = (0..columns).map(|ci| ci % nf == nominal_idx).collect();
            let fab_idx: Vec<usize> = (0..columns).map(|ci| ci % nf).collect();
            let force_direct = vec![false; columns];
            let set = CornerProductSolve {
                strategy: SolverStrategy::preconditioned_iterative(),
                nominal_eps: &epss_fab[nominal_idx],
                epoch,
                omega_idx: &omega_idx,
                is_nominal: &is_nominal,
                force_direct: &force_direct,
                threads,
                skip_zero_weight_adjoints: Some((agg, &fab_idx)),
                recycle: recycle.then_some(global_cols.as_slice()),
            };
            let evals = spectral
                .evaluate_corner_product(&epss, true, &spec, scratch, &set)
                .expect("recycle sweep failed");
            // Spectral fold + one VJP per fabrication corner.
            let w = 1.0 / nf as f64;
            let mut values = [0.0; WAVELENGTHS];
            let mut sweights = [0.0; WAVELENGTHS];
            let mut obj = 0.0;
            let mut v_fab = Array2::<f64>::zeros(dr, dc);
            for f in 0..nf {
                for oi in 0..WAVELENGTHS {
                    values[oi] = evals[oi * nf + f].objective;
                }
                obj += w * agg.aggregate(&values);
                agg.weights_into(&values, &mut sweights);
                let mut seed = Array2::<f64>::zeros(dr, dc);
                for oi in 0..WAVELENGTHS {
                    let wk = sweights[oi];
                    if wk != 0.0 {
                        let v_rho = grad_eps_to_rho(
                            evals[oi * nf + f]
                                .grad_eps
                                .as_ref()
                                .expect("weighted entry carries a gradient"),
                            problem.design_origin,
                            problem.design_shape,
                            corners[f].temperature,
                        );
                        for (dst, src) in seed.as_mut_slice().iter_mut().zip(v_rho.as_slice()) {
                            *dst += wk * src;
                        }
                    }
                }
                let v_mask = chain.vjp_mask_with_etch(&fwds[f], &seed, etch);
                for (dst, src) in v_fab.as_mut_slice().iter_mut().zip(v_mask.as_slice()) {
                    *dst += w * src;
                }
            }
            obj + v_fab[(0, 0)]
        };

    // The per-iteration design step: a small deterministic drift of the
    // level-set field, identical on both sides of the comparison.
    let step = |rho_now: &mut Array2<f64>, epoch: u64| {
        for (i, (dst, &base)) in rho_now
            .as_mut_slice()
            .iter_mut()
            .zip(rho0.as_slice())
            .enumerate()
        {
            let phase = epoch as f64 * 0.7 + i as f64 * 0.13;
            *dst = (base + STEP * phase.sin()).clamp(0.0, 1.0);
        }
    };

    let mut group = c.benchmark_group("recycle_27corner_3wl");
    // Both sides are long (~1 s) end-to-end iterations on a shared-host
    // container: sixteen samples keep the gated medians robust to a
    // transient noisy-neighbour window hitting one side of the pair.
    group.sample_size(16);

    group.bench_function("baseline", |b| {
        let mut scratch = EvalScratch::new();
        scratch.configure_recycling(&RecycleConfig::default());
        let mut rho_now = rho0.clone();
        let mut epoch = 0u64;
        // Warm-up: two untimed iterations size every buffer and factor.
        for _ in 0..2 {
            step(&mut rho_now, epoch);
            iterate(&rho_now, epoch, &mut scratch, false);
            epoch += 1;
        }
        b.iter(|| {
            step(&mut rho_now, epoch);
            let obj = iterate(&rho_now, epoch, &mut scratch, false);
            epoch += 1;
            black_box(obj)
        })
    });

    group.bench_function("recycled", |b| {
        let mut scratch = EvalScratch::new();
        scratch.configure_recycling(&RecycleConfig::enabled());
        let mut rho_now = rho0.clone();
        let mut epoch = 0u64;
        // Warm-up: two untimed iterations fill the deflation stores and
        // build the lagged factors, so the timed region is the steady
        // state the temporal axis targets.
        for _ in 0..2 {
            step(&mut rho_now, epoch);
            iterate(&rho_now, epoch, &mut scratch, true);
            epoch += 1;
        }
        b.iter(|| {
            step(&mut rho_now, epoch);
            let obj = iterate(&rho_now, epoch, &mut scratch, true);
            epoch += 1;
            black_box(obj)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(16);
    targets = bench_recycle
}
criterion_main!(benches);
