//! Corner-cost scaling (the paper's Fig. 3 motivation and §III-E):
//! simulations per optimisation iteration for each sampling strategy.
//! Exhaustive corner sweeping is `O(3^N)`; the adaptive axial+worst set is
//! linear. This bench measures one *real* robust-gradient iteration of the
//! bending benchmark under each strategy.

use boson_core::baselines::{run_method, BaseRunConfig, MethodSpec};
use boson_core::compiled::CompiledProblem;
use boson_core::problem::bending;
use boson_fab::SamplingStrategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_corner_scaling(c: &mut Criterion) {
    let compiled = CompiledProblem::compile(bending()).unwrap();
    let base = BaseRunConfig {
        iterations: 1,
        lr: 0.03,
        seed: 7,
        threads: 2,
    };
    let strategies: Vec<(&str, SamplingStrategy)> = vec![
        ("nominal_only_1sim", SamplingStrategy::NominalOnly),
        ("axial_single_4sims", SamplingStrategy::AxialSingleSided),
        ("axial_double_7sims", SamplingStrategy::AxialDoubleSided),
        ("axial_worst_8sims", SamplingStrategy::AxialPlusWorst),
        ("corner_sweep_27sims", SamplingStrategy::CornerSweep),
    ];
    let mut group = c.benchmark_group("one_robust_iteration");
    group.sample_size(10);
    for (label, sampling) in strategies {
        let spec = MethodSpec {
            name: label.into(),
            sampling,
            relax_epochs: 0, // isolate the corner cost (no free-term solve)
            ..MethodSpec::boson1(1)
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
            b.iter(|| black_box(run_method(&compiled, spec, &base)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_corner_scaling);
criterion_main!(benches);
