//! Corner-cost scaling (the paper's Fig. 3 motivation and §III-E):
//! simulations per optimisation iteration for each sampling strategy.
//! Exhaustive corner sweeping is `O(3^N)`; the adaptive axial+worst set is
//! linear. This bench measures one *real* robust-gradient iteration of the
//! bending benchmark under each strategy — and, for the expensive sets,
//! under both corner solver strategies: per-corner direct factorisation
//! vs the nominal-factor-preconditioned iterative solver
//! (`corner_iterative_*` entries; `scripts/bench.sh` reports the ratio as
//! `corner_iterative_speedup`).

use boson_core::baselines::{run_method, BaseRunConfig, MethodSpec};
use boson_core::compiled::CompiledProblem;
use boson_core::problem::bending;
use boson_fab::SamplingStrategy;
use boson_fdfd::sim::SolverStrategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_corner_scaling(c: &mut Criterion) {
    let compiled = CompiledProblem::compile(bending()).unwrap();
    let strategies: Vec<(&str, SamplingStrategy, SolverStrategy)> = vec![
        (
            "nominal_only_1sim",
            SamplingStrategy::NominalOnly,
            SolverStrategy::Direct,
        ),
        (
            "axial_single_4sims",
            SamplingStrategy::AxialSingleSided,
            SolverStrategy::Direct,
        ),
        (
            "axial_double_7sims",
            SamplingStrategy::AxialDoubleSided,
            SolverStrategy::Direct,
        ),
        (
            "axial_worst_8sims",
            SamplingStrategy::AxialPlusWorst,
            SolverStrategy::Direct,
        ),
        (
            "corner_sweep_27sims",
            SamplingStrategy::CornerSweep,
            SolverStrategy::Direct,
        ),
        (
            "corner_iterative_8sims",
            SamplingStrategy::AxialPlusWorst,
            SolverStrategy::preconditioned_iterative(),
        ),
        (
            "corner_iterative_27sims",
            SamplingStrategy::CornerSweep,
            SolverStrategy::preconditioned_iterative(),
        ),
    ];
    let mut group = c.benchmark_group("one_robust_iteration");
    group.sample_size(10);
    for (label, sampling, solver) in strategies {
        let base = BaseRunConfig {
            iterations: 1,
            lr: 0.03,
            seed: 7,
            threads: 2,
            solver,
        };
        let spec = MethodSpec {
            name: label.into(),
            sampling,
            relax_epochs: 0, // isolate the corner cost (no free-term solve)
            ..MethodSpec::boson1(1)
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
            b.iter(|| black_box(run_method(&compiled, spec, &base)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_corner_scaling);
criterion_main!(benches);
