//! End-to-end gradient benchmarks: one full forward+adjoint evaluation of
//! the bending benchmark, and the complete fabrication-chain vjp.

use boson_core::baselines::standard_chain;
use boson_core::compiled::CompiledProblem;
use boson_core::fabchain::grad_eps_to_rho;
use boson_core::problem::bending;
use boson_fab::VariationCorner;
use boson_num::Array2;
use boson_param::{LevelSetConfig, LevelSetParam, Parameterization};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_adjoint_evaluation(c: &mut Criterion) {
    let compiled = CompiledProblem::compile(bending()).unwrap();
    let p = compiled.problem().clone();
    let ls = LevelSetParam::new(
        p.design_shape.0,
        p.design_shape.1,
        p.grid.dx,
        LevelSetConfig::default(),
    );
    let theta = ls.theta_from_geometry(&p.seed);
    let rho = ls.forward(&theta);
    let eps = compiled.eps_for(&rho, 300.0);

    c.bench_function("bending_forward_only", |b| {
        b.iter(|| black_box(compiled.evaluate_eps(&eps, false).unwrap()))
    });
    c.bench_function("bending_forward_plus_adjoint", |b| {
        b.iter(|| black_box(compiled.evaluate_eps(&eps, true).unwrap()))
    });
}

fn bench_chain_vjp(c: &mut Criterion) {
    let compiled = CompiledProblem::compile(bending()).unwrap();
    let p = compiled.problem().clone();
    let chain = standard_chain(&p);
    let ls = LevelSetParam::new(
        p.design_shape.0,
        p.design_shape.1,
        p.grid.dx,
        LevelSetConfig::default(),
    );
    let theta = ls.theta_from_geometry(&p.seed);
    let rho = ls.forward(&theta);
    let corner = VariationCorner::nominal();
    let fwd = chain.forward(&rho, &corner, false);
    let eps = compiled.eps_for(&fwd.rho_fab, corner.temperature);
    let ev = compiled.evaluate_eps(&eps, true).unwrap();
    let v_rho = grad_eps_to_rho(
        ev.grad_eps.as_ref().unwrap(),
        p.design_origin,
        p.design_shape,
        corner.temperature,
    );

    c.bench_function("fab_chain_forward", |b| {
        b.iter(|| black_box(chain.forward(&rho, &corner, false)))
    });
    c.bench_function("fab_chain_vjp_mask", |b| {
        b.iter(|| black_box(chain.vjp_mask(&fwd, &v_rho)))
    });
    c.bench_function("levelset_vjp", |b| {
        let v: Array2<f64> = v_rho.clone();
        b.iter(|| black_box(ls.vjp(&theta, &v)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_adjoint_evaluation, bench_chain_vjp
}
criterion_main!(benches);
