//! Method comparison on the waveguide bend: conventional density-based
//! inverse design vs the two-stage InvFabCor flow vs BOSON-1 — a
//! miniature of the paper's Table I row.
//!
//! Run with:
//! ```sh
//! cargo run --release --example bend_design
//! ```

use boson1::core::baselines::{run_method, standard_chain, BaseRunConfig, MethodSpec};
use boson1::core::compiled::CompiledProblem;
use boson1::core::eval::{evaluate_ideal, evaluate_post_fab};
use boson1::core::problem::bending;
use boson1::fab::VariationSpace;

fn main() {
    let iterations = std::env::var("BOSON_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let compiled = CompiledProblem::compile(bending()).expect("compile failed");
    let chain = standard_chain(compiled.problem());
    let space = VariationSpace::default();
    let base = BaseRunConfig {
        iterations,
        lr: 0.03,
        seed: 7,
        threads: 8,
        ..BaseRunConfig::default()
    };

    println!(
        "{:16} {:>10} {:>12} {:>12}",
        "method", "pre-fab", "post-fab", "sim cost"
    );
    for spec in MethodSpec::table1_methods(iterations) {
        let run = run_method(&compiled, &spec, &base);
        let (pre, _) = evaluate_ideal(&compiled, &run.mask);
        let post = evaluate_post_fab(&compiled, &chain, &space, &run.mask, 20, 99);
        println!(
            "{:16} {:>10.4} {:>12.4} {:>12}",
            run.name, pre, post.fom.mean, run.factorizations
        );
    }
    println!("\n(transmission efficiency; higher is better)");
}
