//! Quickstart: inverse-design a fabrication-robust 90° waveguide bend
//! with the full BOSON-1 method, then report pre- vs post-fabrication
//! performance.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use boson1::core::baselines::{run_method, standard_chain, BaseRunConfig, MethodSpec};
use boson1::core::compiled::CompiledProblem;
use boson1::core::eval::{evaluate_nominal_fab, evaluate_post_fab};
use boson1::core::problem::bending;
use boson1::fab::VariationSpace;

fn main() {
    let iterations = std::env::var("BOSON_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);

    println!("compiling the bending benchmark (ports, modes, calibration)…");
    let compiled = CompiledProblem::compile(bending()).expect("compile failed");

    println!("running BOSON-1 for {iterations} iterations…");
    let base = BaseRunConfig {
        iterations,
        lr: 0.03,
        seed: 7,
        threads: 8,
        ..BaseRunConfig::default()
    };
    let run = run_method(&compiled, &MethodSpec::boson1(iterations), &base);

    println!("\niter  p      objective   transmission (nominal fab corner)");
    for rec in run.trajectory.iter().step_by(5.max(iterations / 8)) {
        println!(
            "{:4}  {:4.2}   {:9.4}   {:.4}",
            rec.iter, rec.p, rec.objective, rec.fom_nominal
        );
    }

    let chain = standard_chain(compiled.problem());
    let space = VariationSpace::default();
    let (nominal, readings) = evaluate_nominal_fab(&compiled, &chain, &run.mask);
    let post = evaluate_post_fab(&compiled, &chain, &space, &run.mask, 20, 12345);
    println!("\n=== results ===");
    println!("nominal post-fab transmission : {nominal:.4}");
    println!(
        "  (reflection {:.4}, radiation {:.4})",
        readings[0]["refl"], readings[0]["rad"]
    );
    println!(
        "Monte-Carlo post-fab (20 draws): {:.4} ± {:.4}  [min {:.4}, max {:.4}]",
        post.fom.mean, post.fom.std, post.fom.min, post.fom.max
    );
    println!("simulation cost: {} factorisations", run.factorizations);

    // Render the final design as ASCII art.
    println!("\nfinal design ('#' = silicon):");
    let (rows, cols) = run.mask.shape();
    for r in 0..rows {
        let line: String = (0..cols)
            .map(|c| if run.mask[(r, c)] > 0.5 { '#' } else { '.' })
            .collect();
        println!("  {line}");
    }
}
