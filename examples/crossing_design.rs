//! Inverse design of a low-crosstalk waveguide crossing with BOSON-1,
//! reporting the full monitor breakdown (transmission, reflection,
//! crosstalk, radiation) before and after fabrication.
//!
//! Run with:
//! ```sh
//! cargo run --release --example crossing_design
//! ```

use boson1::core::baselines::{run_method, standard_chain, BaseRunConfig, MethodSpec};
use boson1::core::compiled::CompiledProblem;
use boson1::core::eval::{evaluate_nominal_fab, evaluate_post_fab};
use boson1::core::problem::crossing;
use boson1::fab::VariationSpace;

fn main() {
    let iterations = std::env::var("BOSON_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let compiled = CompiledProblem::compile(crossing()).expect("compile failed");
    let chain = standard_chain(compiled.problem());
    let space = VariationSpace::default();
    let base = BaseRunConfig {
        iterations,
        lr: 0.03,
        seed: 7,
        threads: 8,
        ..BaseRunConfig::default()
    };

    let run = run_method(&compiled, &MethodSpec::boson1(iterations), &base);
    let (_, readings) = evaluate_nominal_fab(&compiled, &chain, &run.mask);
    println!("nominal post-fab monitor readings:");
    let mut keys: Vec<_> = readings[0].keys().collect();
    keys.sort();
    for k in keys {
        println!("  {k:14} {:.4}", readings[0][k]);
    }
    let post = evaluate_post_fab(&compiled, &chain, &space, &run.mask, 20, 321);
    println!(
        "\nMonte-Carlo post-fab transmission: {:.4} ± {:.4}",
        post.fom.mean, post.fom.std
    );
    let mut mean_keys: Vec<_> = post.readings_mean.keys().collect();
    mean_keys.sort();
    println!("mean readings under variation:");
    for k in mean_keys {
        println!("  {k:18} {:.4}", post.readings_mean[k]);
    }
}
