//! The paper's hardest benchmark: a TM1→TM3 mode-converting "isolator"
//! whose backward injection must be radiated away. Demonstrates the dense
//! objectives, subspace relaxation and adaptive variation sampling on the
//! contrast objective.
//!
//! Run with:
//! ```sh
//! BOSON_ITERS=60 cargo run --release --example isolator_design
//! ```

use boson1::core::baselines::{run_method, standard_chain, BaseRunConfig, MethodSpec};
use boson1::core::compiled::CompiledProblem;
use boson1::core::eval::{evaluate_nominal_fab, evaluate_post_fab};
use boson1::core::problem::isolator;
use boson1::fab::VariationSpace;

fn main() {
    let iterations = std::env::var("BOSON_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let compiled = CompiledProblem::compile(isolator()).expect("compile failed");
    let chain = standard_chain(compiled.problem());
    let space = VariationSpace::default();
    let base = BaseRunConfig {
        iterations,
        lr: 0.03,
        seed: 7,
        threads: 8,
        ..BaseRunConfig::default()
    };

    println!("optimising the isolator for {iterations} iterations…");
    let run = run_method(&compiled, &MethodSpec::boson1(iterations), &base);

    println!("\ncontrast trajectory (nominal corner, lower is better):");
    for rec in run.trajectory.iter().step_by(5.max(iterations / 10)) {
        let fwd = rec.readings_nominal[0]["trans3"];
        let refl = rec.readings_nominal[0]["refl"];
        println!(
            "  iter {:3}  contrast {:9.4}  fwd trans3 {:.4}  refl {:.4}  p={:.2}",
            rec.iter, rec.fom_nominal, fwd, refl, rec.p
        );
    }

    let (contrast, readings) = evaluate_nominal_fab(&compiled, &chain, &run.mask);
    println!("\nnominal post-fab:");
    println!("  contrast        {contrast:.5}");
    println!("  fwd TM3 trans   {:.4}", readings[0]["trans3"]);
    println!("  fwd reflection  {:.4}", readings[0]["refl"]);
    println!("  bwd radiation   {:.4}", readings[1]["radb"]);
    let post = evaluate_post_fab(&compiled, &chain, &space, &run.mask, 20, 777);
    println!(
        "Monte-Carlo post-fab contrast: {:.5} ± {:.5}",
        post.fom.mean, post.fom.std
    );
}
