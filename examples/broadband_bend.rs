//! Broadband robust inverse design of the waveguide bend: the operating
//! wavelength joins lithography/temperature/etch as a first-class
//! variation axis. The optimiser sweeps the full (fabrication corner × ω)
//! cross product every iteration through the batched preconditioned-
//! iterative solver (one nominal factor and one lockstep sweep per
//! wavelength) and maximises the **worst wavelength's** objective, then
//! reports the finished design's spectrum and bandwidth against a
//! single-wavelength run of the same budget.
//!
//! Run with:
//! ```sh
//! cargo run --release --example broadband_bend
//! ```

use boson1::core::baselines::{levelset_param, standard_chain};
use boson1::core::compiled::CompiledProblem;
use boson1::core::objective::SpectralAggregation;
use boson1::core::problem::bending;
use boson1::core::runner::{InverseDesigner, RunnerConfig};
use boson1::core::spectrum::{bandwidth_within, sweep_compiled, wavelength_sweep};
use boson1::fab::{SamplingStrategy, SpectralAxis, VariationSpace};
use boson1::fdfd::sim::SolverStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HALF_SPAN: f64 = 0.02; // ±20 nm around λ_c = 1.55 µm
const WAVELENGTHS: usize = 3;

fn main() {
    let iterations = std::env::var("BOSON_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let problem = bending();
    let chain = standard_chain(&problem);
    let axis = SpectralAxis::around(HALF_SPAN, WAVELENGTHS);

    let run = |spectral: bool| {
        let (compiled, space) = if spectral {
            (
                CompiledProblem::compile_spectral(problem.clone(), axis)
                    .expect("spectral compile failed"),
                VariationSpace {
                    spectral: axis,
                    ..VariationSpace::default()
                },
            )
        } else {
            (
                CompiledProblem::compile(problem.clone()).expect("compile failed"),
                VariationSpace::default(),
            )
        };
        let param = levelset_param(&problem, false);
        let config = RunnerConfig {
            iterations,
            sampling: SamplingStrategy::AxialDoubleSided,
            solver: SolverStrategy::preconditioned_iterative(),
            spectral_agg: SpectralAggregation::WorstCase,
            ..RunnerConfig::default()
        };
        let mut designer = InverseDesigner::new(&compiled, &param, chain.clone(), space, config);
        let mut rng = StdRng::seed_from_u64(7);
        let theta0 = designer.initial_theta(&mut rng);
        let result = designer.run(theta0);
        (compiled, result)
    };

    println!("single-wavelength run (λ = 1.55 µm only)…");
    let (narrow_compiled, narrow) = run(false);
    println!(
        "broadband run ({WAVELENGTHS} wavelengths, worst-case-over-ω, \
         {} sims/iteration)…",
        WAVELENGTHS * 7
    );
    let (broad_compiled, broad) = run(true);

    // Spectra of the finished designs over a wider window than trained.
    let sweep_n = wavelength_sweep(&narrow_compiled, &chain, &narrow.mask, 0.03, 7);
    let sweep_b = wavelength_sweep(&broad_compiled, &chain, &broad.mask, 0.03, 7);
    println!(
        "\n{:>10} {:>14} {:>14}",
        "λ (µm)", "single-ω FoM", "broadband FoM"
    );
    for (pn, pb) in sweep_n.iter().zip(&sweep_b) {
        println!("{:>10.4} {:>14.4} {:>14.4}", pn.lambda, pn.fom, pb.fom);
    }
    let centre = sweep_n.len() / 2;
    let bw_n = bandwidth_within(&sweep_n, sweep_n[centre].fom, 0.1);
    let bw_b = bandwidth_within(&sweep_b, sweep_b[centre].fom, 0.1);
    println!("\n10%-bandwidth: single-ω {bw_n:.3} µm, broadband {bw_b:.3} µm");
    println!(
        "factorisations: single-ω {}, broadband {}",
        narrow.factorizations, broad.factorizations
    );

    // The broadband design's training-window spectrum, at K solves.
    let trained = sweep_compiled(&broad_compiled, &chain, &broad.mask);
    let worst = trained.iter().map(|p| p.fom).fold(f64::INFINITY, f64::min);
    println!("broadband design worst in-band FoM (trained window): {worst:.4}");
}
