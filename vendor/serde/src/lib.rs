//! Offline subset of `serde`: the trait names plus no-op derives.
//!
//! See `vendor/README.md` for why this exists and what it guarantees.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// The no-op derive does not implement it; nothing in-tree bounds on it.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
