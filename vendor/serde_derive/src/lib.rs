//! No-op `Serialize`/`Deserialize` derive macros (offline subset).
//!
//! The workspace only *carries* the derives on config/record types; nothing
//! in-tree serialises yet, so the derives expand to nothing. See
//! `vendor/README.md`.

use proc_macro::TokenStream;

/// Expands to nothing — the type simply does not implement the (empty)
/// `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing — see [`derive_serialize`].
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
