//! Offline subset of the `rand` crate API used by this workspace.
//!
//! Provides [`rngs::StdRng`] (xoshiro256\*\* seeded via SplitMix64), the
//! [`Rng`] extension trait with `gen_range`/`sample`/`gen`, and
//! [`SeedableRng::seed_from_u64`]. Streams are deterministic per seed but
//! differ numerically from upstream `rand`. See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Rngs constructible from a simple integer seed.
pub trait SeedableRng: Sized {
    /// Deterministically derives the full generator state from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\*.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions for [`Rng::sample`].
pub mod distributions {
    use super::RngCore;

    /// The "natural" distribution of a type (uniform `[0, 1)` for floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    /// Types that can draw a `T` from an entropy source.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.next_f64()
        }
    }

    impl Distribution<u64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, i64, i32);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Draws from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }

    /// Draws from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0.0..1.0f64), c.gen_range(0.0..1.0f64));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..3usize);
            assert!(i < 3);
            let j = rng.gen_range(5..=9u64);
            assert!((5..=9).contains(&j));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
