//! Offline subset of `criterion`: wall-clock sampling benchmarks.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `Bencher::iter`, benchmark groups, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is plain
//! `Instant`-based sampling: each sample times one closure call (with
//! automatic inner batching when a call is faster than ~1 ms) and the
//! reported statistic is the median over `sample_size` samples.
//!
//! When the environment variable `BOSON_BENCH_JSON` names a file, every
//! finished benchmark appends one JSON line:
//!
//! ```json
//! {"id":"banded_lu_factor_64x64","median_ns":123456.0,"mean_ns":125000.0,"samples":10}
//! ```
//!
//! `scripts/bench.sh` consumes these lines to build `BENCH_solver.json`.
//! See `vendor/README.md` for scope and caveats.

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::Instant;

/// Target wall-clock time for a single sample; calls faster than this are
/// batched so timer resolution does not dominate.
const MIN_SAMPLE_SECS: f64 = 1e-3;

/// Benchmark driver: holds configuration and reports results.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (consuming builder,
    /// mirroring criterion's configuration style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (reporting happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    /// Seconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples (batched when fast).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch calibration.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_secs_f64();
        let batch = if once >= MIN_SAMPLE_SECS {
            1
        } else {
            ((MIN_SAMPLE_SECS / once.max(1e-9)).ceil() as usize).clamp(1, 1_000_000)
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("warning: benchmark {id} recorded no samples (missing b.iter call?)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{id:<48} time: [median {} | mean {} | {} samples]",
        fmt_secs(median),
        fmt_secs(mean),
        sorted.len()
    );
    if let Ok(path) = std::env::var("BOSON_BENCH_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"id\":{:?},\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}\n",
                id,
                median * 1e9,
                mean * 1e9,
                sorted.len()
            );
            match OpenOptions::new().create(true).append(true).open(&path) {
                Ok(mut fh) => {
                    let _ = fh.write_all(line.as_bytes());
                }
                Err(e) => eprintln!("warning: cannot append to {path}: {e}"),
            }
        }
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter("p"), &41, |b, &x| {
            b.iter(|| std::hint::black_box(x + 1))
        });
        group.bench_function("f", |b| b.iter(|| std::hint::black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
