//! Offline subset of `proptest`: randomised property testing without
//! shrinking.
//!
//! Supports the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header) binding `pattern in strategy`
//!   arguments;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`];
//! * strategies: numeric ranges, tuples of strategies (arity ≤ 6),
//!   [`collection::vec`], and [`Strategy::prop_map`].
//!
//! Failures report the failing case index and assertion message; there is
//! no shrinking. See `vendor/README.md`.

use rand::rngs::StdRng;
use rand::SampleRange;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`cases` = number of passing cases required).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — draw a fresh case instead.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Result type the generated test body returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}
range_strategy!(f64, usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Stable per-test seed so failures reproduce across runs.
    pub fn seed_for(name: &str) -> u64 {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Declares property tests: `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            // Fully qualified so the expansion does not shadow (or satisfy)
            // trait imports in the enclosing test file.
            let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::__rt::seed_for(stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(20).max(cfg.cases);
            while passed < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many rejected cases ({} attempts, {} passed)",
                    stringify!($name), attempts, passed
                );
                let ($($arg,)+) = ($( $crate::Strategy::gen_value(&$strategy, &mut rng), )+);
                let outcome = (|| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), passed, msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts inside a `proptest!` body (returns a test-case failure rather
/// than panicking, like the real crate).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        // Float comparisons are the common case in these assertions.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let failed = !($cond);
        if failed {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let failed = !($cond);
        if failed {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    }};
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            )));
        }
    }};
}

/// Discards the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {{
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let rejected = !($cond);
        if rejected {
            return Err($crate::TestCaseError::Reject);
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_bounded(x in -2.0f64..2.0, n in 1usize..10) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuples_and_vecs(
            (a, b) in (0.0f64..1.0, 0.0f64..1.0),
            v in crate::collection::vec(0u64..5, 3..=7)
        ) {
            prop_assert!(a < 1.0 && b < 1.0);
            prop_assert!(v.len() >= 3 && v.len() <= 7, "len {}", v.len());
            prop_assert_eq!(v.iter().filter(|&&x| x >= 5).count(), 0);
        }

        #[test]
        fn assume_rejects(x in 0.0f64..1.0) {
            prop_assume!(x > 0.1);
            prop_assert!(x > 0.1);
        }

        #[test]
        fn prop_map_applies(s in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert!(s % 2 == 0 && s < 20);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        inner();
    }
}
