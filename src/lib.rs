//! # boson1 — facade for the BOSON-1 reproduction workspace
//!
//! Re-exports every crate of the reproduction of *BOSON-1: Understanding
//! and Enabling Physically-Robust Photonic Inverse Design with Adaptive
//! Variation-Aware Subspace Optimization* (DATE 2025):
//!
//! | module | contents |
//! |--------|----------|
//! | [`num`] | complex scalar, arrays, FFT, banded LU, eigensolvers |
//! | [`sparse`] | CSR matrices + BiCGSTAB cross-check solver |
//! | [`fdfd`] | 2-D FDFD electromagnetic solver with adjoints |
//! | [`litho`] | differentiable partially-coherent lithography |
//! | [`fab`] | etch projection, EOLE η fields, variation corners |
//! | [`param`] | level-set / density topology parameterisations |
//! | [`core`] | the BOSON-1 optimisation framework + baselines |
//!
//! # Examples
//!
//! See `examples/quickstart.rs` for an end-to-end inverse design run:
//!
//! ```no_run
//! use boson1::core::baselines::{run_method, BaseRunConfig, MethodSpec};
//! use boson1::core::compiled::CompiledProblem;
//! use boson1::core::problem::bending;
//!
//! let compiled = CompiledProblem::compile(bending()).unwrap();
//! let run = run_method(
//!     &compiled,
//!     &MethodSpec::boson1(30),
//!     &BaseRunConfig { iterations: 30, ..Default::default() },
//! );
//! println!("final mask solid fraction: {:.2}", run.mask.mean());
//! ```

pub use boson_core as core;
pub use boson_fab as fab;
pub use boson_fdfd as fdfd;
pub use boson_litho as litho;
pub use boson_num as num;
pub use boson_param as param;
pub use boson_sparse as sparse;
