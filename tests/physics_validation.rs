//! Cross-crate physics validation: the FDFD solver against the iterative
//! solver, reciprocity, and frequency scaling.

use boson1::fdfd::grid::{Axis, Sign, SimGrid};
use boson1::fdfd::monitor::ModalMonitor;
use boson1::fdfd::operator::{assemble_banded, assemble_csr};
use boson1::fdfd::pml::SFactors;
use boson1::fdfd::port::Port;
use boson1::fdfd::sim::Simulation;
use boson1::fdfd::source::ModalSource;
use boson1::num::{Array2, Complex64};
use boson1::sparse::{bicgstab, BicgstabOptions};

const OMEGA: f64 = 2.0 * std::f64::consts::PI / 1.55;

fn straight_wg(grid: &SimGrid) -> Array2<f64> {
    Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    })
}

#[test]
fn direct_and_iterative_solvers_agree() {
    // Same operator, same right-hand side: banded LU vs BiCGSTAB.
    // (A lossy diagonal shift keeps the Krylov iteration well-behaved —
    // we check both solvers against the *same* shifted system.)
    let grid = SimGrid::new(30, 26, 0.05, 8);
    let s = SFactors::new(&grid, OMEGA);
    let eps = straight_wg(&grid);
    let banded = assemble_banded(&grid, &s, &eps, OMEGA);
    let csr = assemble_csr(&grid, &s, &eps, OMEGA);
    // Build shifted copies.
    let n = grid.n();
    let shift = Complex64::new(0.0, 25.0);
    let mut banded_shifted = banded.clone();
    let mut coo = boson1::sparse::CooMatrix::new(n, n);
    for i in 0..n {
        banded_shifted.add(i, i, shift);
        for j in i.saturating_sub(grid.nx)..(i + grid.nx + 1).min(n) {
            let v = csr.get(i, j);
            if v != Complex64::ZERO {
                coo.push(i, j, v);
            }
        }
        coo.push(i, i, shift);
    }
    let csr_shifted = coo.to_csr();
    let rhs: Vec<Complex64> = (0..n)
        .map(|k| Complex64::new((k as f64 * 0.05).sin(), (k as f64 * 0.02).cos()))
        .collect();
    let lu = banded_shifted.factor().unwrap();
    let x_direct = lu.solve_vec(&rhs);
    let x_iter = bicgstab(
        &csr_shifted,
        &rhs,
        &BicgstabOptions {
            tol: 1e-12,
            max_iter: 20_000,
            jacobi_precondition: true,
        },
    )
    .expect("bicgstab convergence")
    .x;
    let num: f64 = x_direct
        .iter()
        .zip(&x_iter)
        .map(|(a, b)| (*a - *b).norm_sqr())
        .sum::<f64>()
        .sqrt();
    let den: f64 = x_direct.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    assert!(num / den < 1e-7, "solver disagreement: {}", num / den);
}

#[test]
fn reciprocity_left_to_right_equals_right_to_left() {
    // A passive linear device is reciprocal: transmission L→R equals R→L
    // for the same mode pair.
    let grid = SimGrid::new(60, 50, 0.05, 10);
    let mut eps = straight_wg(&grid);
    // Asymmetric scatterer in the middle.
    for iy in 20..24 {
        for ix in 28..36 {
            eps[(iy, ix)] = 12.11;
        }
    }
    let sim = Simulation::new(grid, OMEGA, eps.clone()).unwrap();
    let port_l = Port::new("l", Axis::X, 14, 10, 40);
    let port_r = Port::new("r", Axis::X, 45, 10, 40);
    let mode_l = port_l.solve_modes(&grid, &eps, OMEGA, 1).remove(0);
    let mode_r = port_r.solve_modes(&grid, &eps, OMEGA, 1).remove(0);

    let fwd_src = ModalSource::new(port_l.clone(), mode_l.clone(), Sign::Plus);
    let f_fwd = sim.solve_current(&fwd_src.current(&grid));
    let mon_r = ModalMonitor::new(&grid, &port_r, &mode_r, Sign::Plus);
    let t_lr = mon_r.power(&f_fwd.ez);

    let bwd_src = ModalSource::new(port_r, mode_r, Sign::Minus);
    let f_bwd = sim.solve_current(&bwd_src.current(&grid));
    let mon_l = ModalMonitor::new(&grid, &port_l, &mode_l, Sign::Minus);
    let t_rl = mon_l.power(&f_bwd.ez);

    assert!(t_lr > 1e-8);
    assert!(
        (t_lr - t_rl).abs() / t_lr < 0.02,
        "reciprocity violated: {t_lr} vs {t_rl}"
    );
}

#[test]
fn mode_effective_index_between_cladding_and_core() {
    let grid = SimGrid::new(40, 40, 0.05, 8);
    let eps = straight_wg(&grid);
    let port = Port::new("p", Axis::X, 12, 8, 32);
    for count in 1..=2 {
        let modes = port.solve_modes(&grid, &eps, OMEGA, count);
        for m in &modes {
            assert!(m.neff > 1.0 && m.neff < 12.11f64.sqrt(), "neff {}", m.neff);
        }
    }
}

#[test]
fn higher_frequency_confines_mode_more() {
    let grid = SimGrid::new(40, 40, 0.05, 8);
    let eps = straight_wg(&grid);
    let port = Port::new("p", Axis::X, 12, 8, 32);
    let m1 = port.solve_modes(&grid, &eps, OMEGA, 1).remove(0);
    let m2 = port.solve_modes(&grid, &eps, OMEGA * 1.3, 1).remove(0);
    assert!(
        m2.neff > m1.neff,
        "effective index should grow with frequency: {} vs {}",
        m2.neff,
        m1.neff
    );
}
