//! Integration tests: short optimisation runs must actually improve their
//! objectives, and the method zoo must run end-to-end.

use boson1::core::baselines::{run_method, BaseRunConfig, MethodSpec};
use boson1::core::compiled::CompiledProblem;
use boson1::core::problem::{bending, crossing};

fn base(iters: usize) -> BaseRunConfig {
    BaseRunConfig {
        iterations: iters,
        lr: 0.04,
        seed: 7,
        threads: 2,
        ..BaseRunConfig::default()
    }
}

#[test]
fn boson1_improves_bending_transmission() {
    let compiled = CompiledProblem::compile(bending()).expect("compile");
    let run = run_method(&compiled, &MethodSpec::boson1(8), &base(8));
    let first = run.trajectory.first().unwrap().objective;
    let last = run.trajectory.last().unwrap().objective;
    assert!(last > first, "objective must improve: {first} -> {last}");
    // The trajectory records sane readings.
    for rec in &run.trajectory {
        let t = rec.readings_nominal[0]["trans"];
        assert!((-0.1..=1.2).contains(&t), "transmission {t} out of range");
    }
}

#[test]
fn density_baseline_improves_its_own_view() {
    let compiled = CompiledProblem::compile(bending()).expect("compile");
    let run = run_method(&compiled, &MethodSpec::density(), &base(8));
    let first = run.trajectory.first().unwrap().objective;
    let last = run.trajectory.last().unwrap().objective;
    assert!(
        last > first,
        "density objective must improve: {first} -> {last}"
    );
    // Not fab-aware: exactly one factorisation per iteration.
    assert_eq!(run.factorizations, 8);
}

#[test]
fn invfabcor_produces_a_mask_different_from_stage1() {
    let compiled = CompiledProblem::compile(bending()).expect("compile");
    let spec = MethodSpec::inv_fab_cor(MethodSpec::ls_m(), 3);
    let run = run_method(&compiled, &spec, &base(5));
    let d: f64 = run
        .mask
        .as_slice()
        .iter()
        .zip(run.stage1_mask.as_slice())
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(
        d > 1e-3,
        "mask correction should alter the mask (|Δ| = {d})"
    );
}

#[test]
fn crossing_run_keeps_crosstalk_monitored() {
    let compiled = CompiledProblem::compile(crossing()).expect("compile");
    let run = run_method(&compiled, &MethodSpec::boson1(6), &base(6));
    let last = run.trajectory.last().unwrap();
    assert!(last.readings_nominal[0].contains_key("xtalk_top"));
    assert!(last.readings_nominal[0].contains_key("xtalk_bottom"));
}

#[test]
fn run_is_deterministic_for_fixed_seed() {
    let compiled = CompiledProblem::compile(bending()).expect("compile");
    let r1 = run_method(&compiled, &MethodSpec::boson1(4), &base(4));
    let r2 = run_method(&compiled, &MethodSpec::boson1(4), &base(4));
    for (a, b) in r1.mask.as_slice().iter().zip(r2.mask.as_slice()) {
        assert!((a - b).abs() < 1e-12, "runs with the same seed must agree");
    }
}

#[test]
fn fab_aware_costs_more_simulations_than_free() {
    let compiled = CompiledProblem::compile(bending()).expect("compile");
    let free = run_method(&compiled, &MethodSpec::ls(), &base(4));
    let robust = run_method(&compiled, &MethodSpec::boson1(4), &base(4));
    assert!(
        robust.factorizations > 3 * free.factorizations,
        "axial+worst sampling must cost several× the nominal-only run: {} vs {}",
        robust.factorizations,
        free.factorizations
    );
}
