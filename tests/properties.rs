//! Property-based tests of the domain-level invariants: fabrication
//! models, parameterisations and corner algebra.

use boson1::fab::{
    hard_threshold, EoleField, EoleParams, EtchProjection, SamplingStrategy, VariationSpace,
};
use boson1::num::Array2;
use boson1::param::sdf::{Geometry, Shape};
use boson1::param::{DensityConfig, DensityParam, LevelSetConfig, LevelSetParam, Parameterization};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn etch_projection_is_monotone_and_bounded(
        beta in 1.0f64..100.0,
        eta in 0.2f64..0.8,
        i1 in 0.0f64..1.5,
        i2 in 0.0f64..1.5
    ) {
        let p = EtchProjection::new(beta);
        let (lo, hi) = if i1 <= i2 { (i1, i2) } else { (i2, i1) };
        prop_assert!(p.project(lo, eta) <= p.project(hi, eta) + 1e-12);
        // Intensities in [0,1] map into [0,1] exactly.
        let v = p.project(lo.min(1.0), eta);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
    }

    #[test]
    fn hard_threshold_matches_sharp_projection_limit(
        eta in 0.25f64..0.75,
        i in 0.0f64..1.0
    ) {
        prop_assume!((i - eta).abs() > 0.02);
        let sharp = EtchProjection::new(500.0);
        let intensity = Array2::filled(1, 1, i);
        let eta_map = Array2::filled(1, 1, eta);
        let hard = hard_threshold(&intensity, &eta_map)[(0, 0)];
        let soft = sharp.project(i, eta);
        prop_assert!((hard - soft).abs() < 1e-3, "i={i} eta={eta}: {hard} vs {soft}");
    }

    #[test]
    fn eole_field_is_linear_in_xi(
        x1 in proptest::collection::vec(-2.0f64..2.0, 8..=8),
        x2 in proptest::collection::vec(-2.0f64..2.0, 8..=8)
    ) {
        let f = EoleField::new(10, 12, 0.05, EoleParams::default());
        let sum: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let e1 = f.realise(&x1, 0.0);
        let e2 = f.realise(&x2, 0.0);
        let es = f.realise(&sum, 0.0);
        let mean = f.params().mean;
        for ((idx, v), _) in es.indexed_iter().zip(0..) {
            let expect = e1[idx] + e2[idx] - mean;
            prop_assert!((v - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn levelset_forward_bounded_and_vjp_scales(
        seed_vals in proptest::collection::vec(-0.5f64..0.5, 64..=64),
        scale in 0.1f64..5.0
    ) {
        let p = LevelSetParam::new(16, 16, 0.05, LevelSetConfig {
            control_rows: 8,
            control_cols: 8,
            smoothing: 0.05,
        });
        let rho = p.forward(&seed_vals);
        for v in rho.as_slice() {
            prop_assert!((0.0..=1.0).contains(v));
        }
        // vjp is linear in the cotangent.
        let v = Array2::filled(16, 16, 1.0);
        let vs = Array2::filled(16, 16, scale);
        let g1 = p.vjp(&seed_vals, &v);
        let gs = p.vjp(&seed_vals, &vs);
        for (a, b) in g1.iter().zip(&gs) {
            prop_assert!((a * scale - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn density_blur_never_exceeds_input_range(
        theta in proptest::collection::vec(-6.0f64..6.0, 12 * 10)
    ) {
        let p = DensityParam::new(12, 10, 0.05, DensityConfig {
            sharpness: 4.0,
            blur_radius: 1.0,
        });
        let rho = p.forward(&theta);
        for v in rho.as_slice() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(v), "blurred density {v}");
        }
    }

    #[test]
    fn geometry_union_is_monotone(
        x in 0.0f64..2.0,
        y in 0.0f64..2.0,
        r in 0.05f64..0.5
    ) {
        let g1 = Geometry::new().with(Shape::Circle { cx: 1.0, cy: 1.0, r });
        let g2 = g1.clone().with(Shape::Rect { x0: 0.0, y0: 0.0, x1: 0.3, y1: 0.3 });
        // Adding a shape can only grow the solid set.
        if g1.contains(x, y) {
            prop_assert!(g2.contains(x, y));
        }
        prop_assert!(g2.sdf(x, y) <= g1.sdf(x, y) + 1e-12);
    }

    #[test]
    fn corner_sets_have_documented_cardinality(seed in 0u64..1000) {
        let space = VariationSpace::default();
        let mut rng = StdRng::seed_from_u64(seed);
        for strat in [
            SamplingStrategy::NominalOnly,
            SamplingStrategy::CornerSweep,
            SamplingStrategy::AxialSingleSided,
            SamplingStrategy::AxialDoubleSided,
            SamplingStrategy::AxialPlusWorst,
        ] {
            let corners = space.corners(strat, &mut rng);
            prop_assert_eq!(corners.len(), strat.base_corner_count());
            let w: f64 = corners.iter().map(|c| c.weight).sum();
            prop_assert!((w - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn random_corners_stay_in_bounds(seed in 0u64..1000) {
        let space = VariationSpace::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = space.sample_random(&mut rng);
        let (lo, hi) = space.temperature.range();
        prop_assert!(c.temperature >= lo && c.temperature <= hi);
        prop_assert_eq!(c.xi.len(), space.eole.terms);
    }
}
