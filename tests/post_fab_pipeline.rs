//! Integration tests of the post-fabrication evaluation pipeline:
//! fabrication corners really erode/dilate device patterns, and the
//! Monte-Carlo evaluator produces physically-sane, reproducible numbers.

use boson1::core::baselines::standard_chain;
use boson1::core::compiled::CompiledProblem;
use boson1::core::eval::{binarize_mask, evaluate_ideal, evaluate_post_fab};
use boson1::core::problem::bending;
use boson1::fab::{VariationCorner, VariationSpace};
use boson1::litho::LithoCorner;
use boson1::num::Array2;
use boson1::param::{LevelSetConfig, LevelSetParam, Parameterization};

fn seed_mask() -> (CompiledProblem, Array2<f64>) {
    let compiled = CompiledProblem::compile(bending()).expect("compile");
    let p = compiled.problem().clone();
    let ls = LevelSetParam::new(
        p.design_shape.0,
        p.design_shape.1,
        p.grid.dx,
        LevelSetConfig::default(),
    );
    let mask = ls.forward(&ls.theta_from_geometry(&p.seed));
    (compiled, mask)
}

#[test]
fn fabrication_corners_change_the_device() {
    let (compiled, mask) = seed_mask();
    let chain = standard_chain(compiled.problem());
    let binary = binarize_mask(&mask);
    let area = |corner: LithoCorner| -> f64 {
        let c = VariationCorner {
            litho: corner,
            ..VariationCorner::nominal()
        };
        chain.forward(&binary, &c, false).rho_fab.sum()
    };
    let a_min = area(LithoCorner::Min);
    let a_nom = area(LithoCorner::Nominal);
    let a_max = area(LithoCorner::Max);
    assert!(a_min < a_nom, "under-dose erodes: {a_min} !< {a_nom}");
    assert!(a_max > a_nom, "over-dose dilates: {a_max} !> {a_nom}");
}

#[test]
fn fine_features_do_not_survive_fabrication() {
    // A 1-pixel (50 nm) comb is far below the litho resolution: after
    // fabrication, its solid fraction collapses or fuses — the pattern is
    // qualitatively destroyed, unlike a wide strip.
    let (compiled, _) = seed_mask();
    let chain = standard_chain(compiled.problem());
    let (dr, dc) = compiled.problem().design_shape;
    let comb = Array2::from_fn(dr, dc, |r, _| if r % 2 == 0 { 1.0 } else { 0.0 });
    let fabbed = chain
        .forward(&comb, &VariationCorner::nominal(), true)
        .rho_fab;
    // The comb's fine alternation must be gone: neighbouring rows no
    // longer alternate.
    let mut alternating = 0;
    for r in 1..dr {
        for c in 0..dc {
            if (fabbed[(r, c)] - fabbed[(r - 1, c)]).abs() > 0.5 {
                alternating += 1;
            }
        }
    }
    let frac = alternating as f64 / ((dr - 1) * dc) as f64;
    assert!(
        frac < 0.2,
        "sub-resolution comb survived fabrication ({frac:.2} of edges alternate)"
    );
}

#[test]
fn wide_strip_survives_fabrication() {
    let (compiled, _) = seed_mask();
    let chain = standard_chain(compiled.problem());
    let (dr, dc) = compiled.problem().design_shape;
    // 0.4 µm strip (8 cells) — well above the ~0.16 µm MFS.
    let strip = Array2::from_fn(
        dr,
        dc,
        |r, _| {
            if r.abs_diff(dr / 2) <= 4 {
                1.0
            } else {
                0.0
            }
        },
    );
    let fabbed = chain
        .forward(&strip, &VariationCorner::nominal(), true)
        .rho_fab;
    // Compare areas away from the mask ends (the finite mask is padded
    // with void, so the strip ends legitimately erode).
    let central = |a: &Array2<f64>| -> f64 {
        let mut s = 0.0;
        for r in 0..dr {
            for c in dc / 4..3 * dc / 4 {
                s += a[(r, c)];
            }
        }
        s
    };
    let in_area = central(&strip);
    let out_area = central(&fabbed);
    assert!(
        (out_area - in_area).abs() / in_area < 0.2,
        "wide strip should survive: {in_area} -> {out_area}"
    );
}

#[test]
fn post_fab_mc_is_reproducible_and_bounded() {
    let (compiled, mask) = seed_mask();
    let chain = standard_chain(compiled.problem());
    let space = VariationSpace::default();
    let r1 = evaluate_post_fab(&compiled, &chain, &space, &mask, 5, 42);
    let r2 = evaluate_post_fab(&compiled, &chain, &space, &mask, 5, 42);
    assert_eq!(r1.samples, r2.samples, "same seed ⇒ same draws");
    for s in &r1.samples {
        assert!(
            (-0.1..=1.2).contains(s),
            "transmission sample {s} out of range"
        );
    }
    // Variation must actually move the FoM between samples.
    assert!(
        r1.fom.std > 0.0,
        "MC samples identical — variation not applied"
    );
}

#[test]
fn ideal_evaluation_binarizes_first() {
    let (compiled, mask) = seed_mask();
    let half = mask.map(|&v| v * 0.5 + 0.25); // all grey
    let (fom_grey, _) = evaluate_ideal(&compiled, &half);
    let (fom_binary, _) = evaluate_ideal(&compiled, &mask);
    // Both must be evaluated as *binary* devices: the grey version
    // binarises to the same pattern (threshold 0.5) only where mask>0.5.
    assert!(fom_grey.is_finite() && fom_binary.is_finite());
}
