//! Integration test: the full gradient chain
//! `θ → ρ → litho → etch → ε → FDFD objective`
//! matches central finite differences end-to-end. This is the single most
//! important invariant in the repository — it certifies that the adjoint
//! solver, every vjp and the parameterisation compose correctly.

use boson1::core::baselines::standard_chain;
use boson1::core::compiled::CompiledProblem;
use boson1::core::fabchain::{assemble_eps, grad_eps_to_rho};
use boson1::core::problem::bending;
use boson1::fab::VariationCorner;
use boson1::param::{LevelSetConfig, LevelSetParam, Parameterization};

#[test]
fn full_chain_gradient_matches_finite_difference() {
    let compiled = CompiledProblem::compile(bending()).expect("compile");
    let problem = compiled.problem().clone();
    let chain = standard_chain(&problem);
    let ls = LevelSetParam::new(
        problem.design_shape.0,
        problem.design_shape.1,
        problem.grid.dx,
        LevelSetConfig {
            control_rows: 10,
            control_cols: 10,
            smoothing: 0.05,
        },
    );
    let theta = ls.theta_from_geometry(&problem.seed);
    let corner = VariationCorner::nominal();

    // Scalar objective as a function of θ through the whole pipeline.
    let objective = |th: &[f64]| -> f64 {
        let rho = ls.forward(th);
        let fwd = chain.forward(&rho, &corner, false);
        let eps = assemble_eps(
            &problem.background_solid,
            problem.design_origin,
            &fwd.rho_fab,
            corner.temperature,
        );
        compiled
            .evaluate_eps(&eps, false)
            .expect("evaluate")
            .objective
    };

    // Analytic gradient via adjoint + chain vjps.
    let rho = ls.forward(&theta);
    let fwd = chain.forward(&rho, &corner, false);
    let eps = assemble_eps(
        &problem.background_solid,
        problem.design_origin,
        &fwd.rho_fab,
        corner.temperature,
    );
    let ev = compiled
        .evaluate_eps(&eps, true)
        .expect("evaluate with grad");
    let v_rho = grad_eps_to_rho(
        ev.grad_eps.as_ref().unwrap(),
        problem.design_origin,
        problem.design_shape,
        corner.temperature,
    );
    let v_mask = chain.vjp_mask(&fwd, &v_rho);
    let grad_theta = ls.vjp(&theta, &v_mask);

    // Central finite differences on a handful of parameters, including
    // ones near the waveguide path where gradients are significant.
    let h = 1e-5;
    let mut checked = 0;
    let max_abs = grad_theta.iter().fold(0.0f64, |m, g| m.max(g.abs()));
    assert!(max_abs > 0.0, "gradient must not vanish identically");
    for k in (0..theta.len()).step_by(theta.len() / 7) {
        let mut tp = theta.clone();
        tp[k] += h;
        let op = objective(&tp);
        tp[k] -= 2.0 * h;
        let om = objective(&tp);
        let fd = (op - om) / (2.0 * h);
        let ad = grad_theta[k];
        assert!(
            (fd - ad).abs() < 1e-5 + 1e-2 * fd.abs().max(ad.abs()).max(0.01 * max_abs),
            "θ[{k}]: finite difference {fd} vs adjoint {ad}"
        );
        checked += 1;
    }
    assert!(checked >= 5, "checked {checked} parameters");
}

#[test]
fn gradient_through_litho_corners_differs() {
    // The min/max corners see different imaging, so their gradients must
    // differ — the whole point of multi-corner robust optimisation.
    let compiled = CompiledProblem::compile(bending()).expect("compile");
    let problem = compiled.problem().clone();
    let chain = standard_chain(&problem);
    let ls = LevelSetParam::new(
        problem.design_shape.0,
        problem.design_shape.1,
        problem.grid.dx,
        LevelSetConfig::default(),
    );
    let theta = ls.theta_from_geometry(&problem.seed);
    let rho = ls.forward(&theta);

    let grad_for = |corner: &VariationCorner| -> Vec<f64> {
        let fwd = chain.forward(&rho, corner, false);
        let eps = assemble_eps(
            &problem.background_solid,
            problem.design_origin,
            &fwd.rho_fab,
            corner.temperature,
        );
        let ev = compiled.evaluate_eps(&eps, true).unwrap();
        let v_rho = grad_eps_to_rho(
            ev.grad_eps.as_ref().unwrap(),
            problem.design_origin,
            problem.design_shape,
            corner.temperature,
        );
        let v_mask = chain.vjp_mask(&fwd, &v_rho);
        ls.vjp(&theta, &v_mask)
    };

    let g_nom = grad_for(&VariationCorner::nominal());
    let g_min = grad_for(&VariationCorner {
        litho: boson1::litho::LithoCorner::Min,
        ..VariationCorner::nominal()
    });
    let diff: f64 = g_nom
        .iter()
        .zip(&g_min)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>();
    let scale: f64 = g_nom.iter().map(|g| g.abs()).sum::<f64>();
    assert!(
        diff > 1e-3 * scale,
        "corner gradients suspiciously identical"
    );
}
